"""Tests for the graph-database containment layer and the approximate
embedding-count estimator."""

import pytest

from repro import CECIMatcher, Graph
from repro.core import (
    GraphDatabase,
    cardinality_bound,
    estimate_embeddings,
)
from repro.graph import erdos_renyi, inject_labels, power_law


@pytest.fixture
def molecule_db():
    graphs = [
        Graph(3, [(0, 1), (1, 2)], labels=["C", "O", "C"]),       # ether
        Graph(3, [(0, 1), (1, 2), (0, 2)], labels=["C", "C", "C"]),  # ring
        Graph(2, [(0, 1)], labels=["N", "C"]),
        Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)], labels=["C", "O", "C", "O"]),
    ]
    return GraphDatabase(graphs)


class TestGraphDatabase:
    def test_len_and_getitem(self, molecule_db):
        assert len(molecule_db) == 4
        assert molecule_db[2].num_vertices == 2

    def test_containment_finds_matches(self, molecule_db):
        ether = Graph(3, [(0, 1), (1, 2)], labels=["C", "O", "C"])
        result = molecule_db.contains(ether)
        assert set(result.matches) == {0, 3}

    def test_label_filter_prunes_without_verification(self, molecule_db):
        sulfur = Graph(1, [], labels=["S"])
        result = molecule_db.contains(sulfur)
        assert result.matches == ()
        assert result.filtered_out == 4
        assert result.verified == 0

    def test_edge_count_filter(self, molecule_db):
        big = Graph(5, [(i, i + 1) for i in range(4)] + [(0, 4), (1, 3)],
                    labels=["C"] * 5)
        result = molecule_db.contains(big)
        assert result.filtered_out == 4  # nobody has 6 edges

    def test_degree_filter(self, molecule_db):
        star = Graph(4, [(0, 1), (0, 2), (0, 3)], labels=["C", "C", "C", "C"])
        result = molecule_db.contains(star)
        assert result.matches == ()  # max degree in db is 2

    def test_false_candidates_counted(self):
        # a 5-cycle query against a bowtie: enough edges, enough degree,
        # same labels -> passes every filter, fails verification
        bowtie = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        db = GraphDatabase([bowtie])
        five_cycle = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        result = db.contains(five_cycle)
        assert result.false_candidates == 1
        assert result.matches == ()

    def test_occurrences_lists_embeddings(self, molecule_db):
        ether = Graph(3, [(0, 1), (1, 2)], labels=["C", "O", "C"])
        occurrences = molecule_db.occurrences(ether)
        assert set(occurrences) == {0, 3}
        assert all(embeddings for embeddings in occurrences.values())

    def test_add_after_construction(self, molecule_db):
        index = molecule_db.add(Graph(2, [(0, 1)], labels=["S", "S"]))
        sulfur = Graph(1, [], labels=["S"])
        assert index in molecule_db.contains(sulfur).matches


class TestEstimator:
    @pytest.fixture(scope="class")
    def triangle_instance(self):
        triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
        data = power_law(250, 5, seed=11, min_edges_per_vertex=1)
        return triangle, data

    def test_bound_dominates_truth(self, triangle_instance):
        triangle, data = triangle_instance
        matcher = CECIMatcher(triangle, data, break_automorphisms=False)
        true_count = matcher.count()
        assert cardinality_bound(matcher) >= true_count

    def test_estimate_close_to_truth(self, triangle_instance):
        triangle, data = triangle_instance
        truth = CECIMatcher(triangle, data, break_automorphisms=False).count()
        matcher = CECIMatcher(triangle, data, break_automorphisms=False)
        result = estimate_embeddings(matcher, samples=4000, seed=5)
        assert result.estimate == pytest.approx(truth, rel=0.3)
        assert 0 < result.hits <= result.samples

    def test_estimate_zero_when_no_embeddings(self):
        data = Graph(3, [(0, 1), (1, 2)], labels=["A", "B", "A"])
        query = Graph(2, [(0, 1)], labels=["A", "Z"])
        matcher = CECIMatcher(query, data, break_automorphisms=False)
        result = estimate_embeddings(matcher, samples=50)
        assert result.estimate == 0.0
        assert result.bound == 0

    def test_invalid_sample_count(self, triangle_instance):
        triangle, data = triangle_instance
        matcher = CECIMatcher(triangle, data, break_automorphisms=False)
        with pytest.raises(ValueError):
            estimate_embeddings(matcher, samples=0)

    def test_deterministic_for_seed(self, triangle_instance):
        triangle, data = triangle_instance
        a = estimate_embeddings(
            CECIMatcher(triangle, data, break_automorphisms=False),
            samples=200, seed=42,
        )
        b = estimate_embeddings(
            CECIMatcher(triangle, data, break_automorphisms=False),
            samples=200, seed=42,
        )
        assert a.estimate == b.estimate

    def test_repr_mentions_numbers(self, triangle_instance):
        triangle, data = triangle_instance
        matcher = CECIMatcher(triangle, data, break_automorphisms=False)
        result = estimate_embeddings(matcher, samples=100, seed=1)
        assert "embeddings" in repr(result)
