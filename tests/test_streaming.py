"""Tests for the streaming subsystem: DynamicGraph and ContinuousQuery.

The exactness oracle: after every update, the maintained match set must
equal a full re-enumeration on the current snapshot.
"""

import random

import pytest

from repro import CECIMatcher, Graph
from repro.streaming import ContinuousQuery, DynamicGraph, UpdateDelta


def full_matches(query, dynamic, break_automorphisms=True):
    snapshot = dynamic.snapshot()
    return set(
        CECIMatcher(
            query, snapshot, break_automorphisms=break_automorphisms
        ).match()
    )


class TestDynamicGraph:
    def test_insert_and_delete(self):
        g = DynamicGraph(3)
        assert g.insert_edge(0, 1)
        assert not g.insert_edge(1, 0)  # duplicate
        assert g.num_edges == 1
        assert g.delete_edge(0, 1)
        assert not g.delete_edge(0, 1)
        assert g.num_edges == 0

    def test_self_loop_rejected(self):
        g = DynamicGraph(2)
        with pytest.raises(ValueError):
            g.insert_edge(1, 1)

    def test_unknown_vertex_rejected(self):
        g = DynamicGraph(2)
        with pytest.raises(ValueError):
            g.insert_edge(0, 9)

    def test_add_vertex_with_labels(self):
        g = DynamicGraph()
        v = g.add_vertex(labels={"A", "B"})
        assert g.labels_of(v) == frozenset({"A", "B"})

    def test_set_labels(self):
        g = DynamicGraph(1)
        g.set_labels(0, "X")
        assert g.labels_of(0) == frozenset({"X"})
        with pytest.raises(ValueError):
            g.set_labels(0, set())

    def test_snapshot_caching_and_invalidating(self):
        g = DynamicGraph(3, [(0, 1)])
        first = g.snapshot()
        assert g.snapshot() is first
        g.insert_edge(1, 2)
        assert g.snapshot() is not first
        assert g.snapshot().num_edges == 2

    def test_from_graph(self):
        base = Graph(3, [(0, 1), (1, 2)], labels=["A", "B", "C"])
        g = DynamicGraph.from_graph(base)
        assert g.snapshot() == base

    def test_neighbors_and_degree(self):
        g = DynamicGraph(3, [(0, 1), (0, 2)])
        assert g.neighbors(0) == {1, 2}
        assert g.degree(0) == 2

    def test_labels_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DynamicGraph(2, labels=["A"])


class TestContinuousQuery:
    def test_insert_creates_triangle(self):
        g = DynamicGraph(3, [(0, 1), (1, 2)])
        triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
        cq = ContinuousQuery(triangle, g)
        assert cq.current_matches == set()
        delta = cq.insert_edge(0, 2)
        assert delta.inserted
        assert len(delta.created) == 1
        assert cq.current_matches == full_matches(triangle, g)

    def test_delete_destroys_triangle(self):
        g = DynamicGraph(3, [(0, 1), (1, 2), (0, 2)])
        triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
        cq = ContinuousQuery(triangle, g)
        assert len(cq.current_matches) == 1
        delta = cq.delete_edge(1, 2)
        assert not delta.inserted
        assert len(delta.destroyed) == 1
        assert cq.current_matches == set()

    def test_duplicate_insert_is_noop(self):
        g = DynamicGraph(3, [(0, 1)])
        triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
        cq = ContinuousQuery(triangle, g)
        delta = cq.insert_edge(0, 1)
        assert delta.created == () and delta.destroyed == ()

    def test_delete_absent_edge_is_noop(self):
        g = DynamicGraph(3, [(0, 1)])
        triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
        cq = ContinuousQuery(triangle, g)
        delta = cq.delete_edge(1, 2)
        assert delta.created == () and delta.destroyed == ()

    def test_labeled_stream(self):
        g = DynamicGraph(4, [(0, 1)], labels=["A", "B", "A", "B"])
        path = Graph(3, [(0, 1), (1, 2)], labels=["A", "B", "A"])
        cq = ContinuousQuery(path, g)
        delta = cq.insert_edge(1, 2)
        assert (0, 1, 2) in delta.created
        assert cq.current_matches == full_matches(path, g)

    def test_track_matches_off(self):
        g = DynamicGraph(3, [(0, 1), (1, 2)])
        triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
        cq = ContinuousQuery(triangle, g, track_matches=False)
        delta = cq.insert_edge(0, 2)
        assert len(delta.created) == 1
        with pytest.raises(RuntimeError):
            cq.current_matches

    def test_disconnected_query_rejected(self):
        g = DynamicGraph(3)
        with pytest.raises(ValueError):
            ContinuousQuery(Graph(4, [(0, 1), (2, 3)]), g)

    def test_repr(self):
        delta = UpdateDelta((1, 2), True, ((0, 1, 2),), ())
        assert "insert" in repr(delta)
        assert "+1" in repr(delta)

    @pytest.mark.parametrize("break_autos", [True, False])
    def test_random_stream_matches_full_reenumeration(self, break_autos):
        rng = random.Random(99)
        n = 12
        g = DynamicGraph(n)
        query = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])  # square
        cq = ContinuousQuery(query, g, break_automorphisms=break_autos)
        possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
        for step in range(120):
            a, b = rng.choice(possible)
            if g.has_edge(a, b) and rng.random() < 0.5:
                cq.delete_edge(a, b)
            else:
                cq.insert_edge(a, b)
            if step % 10 == 0:
                assert cq.current_matches == full_matches(
                    query, g, break_autos
                ), f"divergence at step {step}"
        assert cq.current_matches == full_matches(query, g, break_autos)

    def test_deltas_are_disjoint_and_consistent(self):
        rng = random.Random(7)
        g = DynamicGraph(10)
        triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
        cq = ContinuousQuery(triangle, g)
        running = set()
        for _ in range(80):
            a, b = rng.randrange(10), rng.randrange(10)
            if a == b:
                continue
            if g.has_edge(a, b):
                delta = cq.delete_edge(a, b)
                assert set(delta.destroyed) <= running
                running -= set(delta.destroyed)
            else:
                delta = cq.insert_edge(a, b)
                assert not (set(delta.created) & running)
                running |= set(delta.created)
        assert running == cq.current_matches
