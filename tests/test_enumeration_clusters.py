"""Tests for set-intersection enumeration, work units, and
ExtremeCluster decomposition."""

import pytest

from repro import CECIMatcher, Graph
from repro.core import WorkUnit, clusters_of, decompose_extreme_clusters
from repro.graph import inject_labels, power_law


@pytest.fixture
def skewed_instance(triangle):
    """Triangle query on a power-law graph: skewed cluster sizes."""
    return triangle, power_law(300, 4, seed=17)


class TestEnumeration:
    def test_generator_and_fast_path_agree(self, skewed_instance):
        query, data = skewed_instance
        streaming = set(CECIMatcher(query, data).embeddings())
        collected = set(CECIMatcher(query, data).match())
        assert streaming == collected

    def test_limit_truncates(self, skewed_instance):
        query, data = skewed_instance
        total = CECIMatcher(query, data).count()
        assert total > 10
        assert CECIMatcher(query, data).count(limit=10) == 10
        assert len(CECIMatcher(query, data).match(limit=10)) == 10

    def test_limit_zero(self, skewed_instance):
        query, data = skewed_instance
        assert CECIMatcher(query, data).match(limit=0) == []

    def test_embedding_indexing_is_by_query_vertex(self, paper_query, paper_data):
        found = CECIMatcher(paper_query, paper_data).match()
        for embedding in found:
            for s, d in paper_query.edges:
                assert paper_data.has_edge(embedding[s], embedding[d])
            for u in paper_query.vertices():
                assert paper_query.labels_of(u) <= paper_data.labels_of(
                    embedding[u]
                )

    def test_injectivity(self, skewed_instance):
        query, data = skewed_instance
        for embedding in CECIMatcher(query, data).match():
            assert len(set(embedding)) == query.num_vertices

    def test_intersection_vs_edge_verification_agree(self, skewed_instance):
        query, data = skewed_instance
        with_intersection = set(CECIMatcher(query, data).match())
        verifying = CECIMatcher(query, data, use_intersection=False)
        assert set(verifying.match()) == with_intersection
        assert verifying.stats.edge_verifications > 0

    def test_intersection_mode_never_verifies_edges(self, skewed_instance):
        query, data = skewed_instance
        matcher = CECIMatcher(query, data)
        matcher.match()
        assert matcher.stats.edge_verifications == 0
        assert matcher.stats.intersections > 0

    def test_single_vertex_query(self):
        data = Graph(4, [(0, 1), (1, 2), (2, 3)], labels=["A", "B", "A", "B"])
        query = Graph(1, [], labels=["A"])
        assert set(CECIMatcher(query, data).match()) == {(0,), (2,)}

    def test_no_embeddings(self):
        data = Graph(3, [(0, 1), (1, 2)], labels=["A", "B", "A"])
        query = Graph(2, [(0, 1)], labels=["A", "Z"])
        assert CECIMatcher(query, data).match() == []

    def test_recursive_calls_counted(self, skewed_instance):
        query, data = skewed_instance
        matcher = CECIMatcher(query, data)
        found = matcher.match()
        assert matcher.stats.embeddings_found == len(found)
        assert matcher.stats.recursive_calls >= len(found)


class TestWorkUnits:
    def test_intact_clusters_sorted_by_workload(self, skewed_instance):
        query, data = skewed_instance
        matcher = CECIMatcher(query, data)
        units = matcher.work_units(beta=None)
        workloads = [unit.workload for unit in units]
        assert workloads == sorted(workloads, reverse=True)
        assert all(unit.depth == 1 for unit in units)

    def test_units_partition_the_embedding_set(self, skewed_instance):
        query, data = skewed_instance
        matcher = CECIMatcher(query, data)
        sequential = matcher.match()
        for beta in (None, 1.0, 0.2):
            units = matcher.work_units(worker_count=4, beta=beta)
            from_units = []
            for unit in units:
                from_units.extend(matcher.embeddings_of_unit(unit))
            assert sorted(from_units) == sorted(sequential)

    def test_decomposition_respects_threshold(self, skewed_instance):
        query, data = skewed_instance
        matcher = CECIMatcher(query, data)
        workers, beta = 4, 0.5
        total = sum(u.workload for u in matcher.work_units(beta=None))
        threshold = beta * total / workers
        units = matcher.work_units(worker_count=workers, beta=beta)
        assert all(unit.workload <= threshold + 1e-9 for unit in units)

    def test_smaller_beta_means_more_units(self, skewed_instance):
        query, data = skewed_instance
        matcher = CECIMatcher(query, data)
        coarse = matcher.work_units(worker_count=4, beta=1.0)
        fine = matcher.work_units(worker_count=4, beta=0.1)
        assert len(fine) >= len(coarse)

    def test_cardinality_upper_bounds_cluster_embeddings(self, skewed_instance):
        query, data = skewed_instance
        matcher = CECIMatcher(query, data)
        ceci = matcher.build()
        for pivot in ceci.pivots:
            true_count = len(
                matcher.embeddings_of_unit(WorkUnit((pivot,), 0.0))
            )
            assert ceci.cluster_cardinality(pivot) >= true_count

    def test_invalid_parameters_rejected(self, skewed_instance):
        query, data = skewed_instance
        matcher = CECIMatcher(query, data)
        ceci = matcher.build()
        with pytest.raises(ValueError):
            decompose_extreme_clusters(ceci, worker_count=0)
        with pytest.raises(ValueError):
            decompose_extreme_clusters(ceci, worker_count=2, beta=0.0)

    def test_workunit_accessors(self):
        unit = WorkUnit((7, 9), 3.5)
        assert unit.pivot == 7
        assert unit.depth == 2
        assert unit.workload == 3.5


class TestMatcherFacade:
    def test_empty_query_rejected(self, skewed_instance):
        _, data = skewed_instance
        with pytest.raises(ValueError):
            CECIMatcher(Graph(0, []), data)

    def test_disconnected_query_rejected(self, skewed_instance):
        _, data = skewed_instance
        with pytest.raises(ValueError):
            CECIMatcher(Graph(4, [(0, 1), (2, 3)]), data)

    def test_build_is_cached(self, skewed_instance):
        query, data = skewed_instance
        matcher = CECIMatcher(query, data)
        assert matcher.build() is matcher.build()

    def test_phase_timings_recorded(self, skewed_instance):
        query, data = skewed_instance
        matcher = CECIMatcher(query, data)
        matcher.match()
        for phase in ("preprocess", "filter", "refine", "enumerate"):
            assert phase in matcher.stats.phase_seconds

    def test_find_embedding(self, paper_query, paper_data):
        from repro import find_embedding

        embedding = find_embedding(paper_query, paper_data)
        assert embedding in {(1, 3, 4, 11, 12), (1, 5, 6, 13, 14)}

    def test_find_embedding_none(self):
        from repro import find_embedding

        data = Graph(2, [(0, 1)], labels=["A", "B"])
        query = Graph(2, [(0, 1)], labels=["A", "Z"])
        assert find_embedding(query, data) is None

    def test_count_embeddings_helper(self, paper_query, paper_data):
        from repro import count_embeddings

        assert count_embeddings(paper_query, paper_data) == 2

    def test_labeled_data_directed_flag_is_ignored_for_matching(self):
        # Matching treats directed data graphs via symmetric adjacency.
        data = Graph(3, [(0, 1), (1, 2), (0, 2)], directed=True)
        triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert CECIMatcher(triangle, data).count() == 1
