"""Property/metamorphic harness for the resident match service.

The service's contract is *exactness*: whatever combination of cache
tier (cold build, LRU hit, spill revival), execution shape (batched
cluster units vs. solo) and truncation (limit, budget) serves a
request, the response must reproduce a fresh sequential
``CECIMatcher(query, data).run()`` — embedding for embedding, in order,
for the bit-identical modes; set-for-set where only enumeration order
may legitimately differ (relabeled isomorphic hits, symmetry breaking).

Mirrors :mod:`test_differential`: seeded random instances, and on a
mismatch the query is shrunk by dropping edges (staying connected)
while the disagreement persists, so a failing seed reports a minimal
reproducer instead of a 16-vertex haystack.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from test_differential import make_instance
from repro.core.matcher import CECIMatcher
from repro.graph import Graph
from repro.resilience.budget import Budget
from repro.service import MatchRequest, MatchService, Status

#: The service modes every instance is checked under; each entry must
#: agree with the fresh sequential matcher (see ``_mode_failures``).
MODES = (
    "cold",
    "warm-hit",
    "solo-vs-batched",
    "limit-prefix",
    "budget-prefix",
)


def _fresh(
    query: Graph,
    data: Graph,
    limit: Optional[int] = None,
    budget: Optional[Budget] = None,
    break_automorphisms: bool = False,
):
    """The sequential reference — same engine configuration the service
    fixes service-wide (bfs order, refinement, intersections on)."""
    matcher = CECIMatcher(
        query, data, break_automorphisms=break_automorphisms, budget=budget
    )
    return matcher.run(limit)


def _mode_failures(query: Graph, data: Graph) -> List[str]:
    """Names of MODES whose service response diverges from the fresh
    sequential matcher on this instance (empty list = all exact)."""
    failures: List[str] = []
    expected = _fresh(query, data).embeddings
    request = lambda **kw: MatchRequest(  # noqa: E731 - local shorthand
        query, break_automorphisms=False, **kw
    )
    with MatchService(data, workers=2) as service:
        cold = service.match(request())
        if not (cold.ok and cold.cache == "miss"
                and cold.embeddings == expected):
            failures.append("cold")
        warm = service.match(request())
        if not (warm.ok and warm.cache == "hit"
                and warm.embeddings == expected):
            failures.append("warm-hit")
        # limit >= |answer| forces the solo path but must still return
        # the complete batched/sequential answer, in the same order.
        solo = service.match(request(limit=len(expected) + 1))
        if not (solo.ok and solo.embeddings == expected):
            failures.append("solo-vs-batched")
        k = max(1, len(expected) // 2)
        if service.match(request(limit=k)).embeddings != _fresh(
            query, data, limit=k
        ).embeddings:
            failures.append("limit-prefix")
        budget = Budget(max_embeddings=k)
        truncated_fresh = _fresh(query, data, budget=budget)
        truncated = service.match(request(budget=budget))
        agree = (
            truncated.embeddings == truncated_fresh.embeddings
            and truncated.truncated == truncated_fresh.truncated
            and truncated.status
            == (Status.TRUNCATED if truncated_fresh.truncated else Status.OK)
        )
        if not agree:
            failures.append("budget-prefix")
    return failures


def _connected_after_drop(query: Graph, edge_index: int) -> Optional[Graph]:
    edges = [e for i, e in enumerate(query.edges) if i != edge_index]
    labels = {u: query.labels_of(u) for u in query.vertices()}
    shrunk = Graph(query.num_vertices, edges, labels=labels)
    return shrunk if shrunk.is_connected() else None


def _shrink(query: Graph, data: Graph) -> Graph:
    """Greedy edge-dropping shrink, exactly test_differential's loop but
    with service-vs-sequential disagreement as the failure predicate."""
    current = query
    progress = True
    while progress:
        progress = False
        for i in range(len(current.edges)):
            candidate = _connected_after_drop(current, i)
            if candidate is None:
                continue
            if _mode_failures(candidate, data):
                current = candidate
                progress = True
                break
    return current


@pytest.mark.parametrize("seed", range(20))
def test_service_reproduces_sequential_matcher(seed):
    instance = make_instance(seed)
    if instance is None:
        pytest.skip("seed yields no connected query")
    query, data = instance
    failures = _mode_failures(query, data)
    if not failures:
        return
    minimal = _shrink(query, data)
    still = _mode_failures(minimal, data)
    pytest.fail(
        f"seed {seed}: service modes {failures} diverge from the "
        f"sequential matcher.\nMinimal failing query after shrinking "
        f"({len(minimal.edges)} edges, modes {still}):\n"
        f"  vertices={minimal.num_vertices}\n"
        f"  edges={minimal.edges}\n"
        f"  labels={[minimal.labels_of(u) for u in minimal.vertices()]}\n"
        f"  data: |V|={data.num_vertices} edges={data.edges}\n"
        f"  data labels={[data.labels_of(v) for v in data.vertices()]}"
    )


@pytest.mark.parametrize("seed", [1, 4, 8])
def test_symmetry_breaking_matches_sequential(seed):
    """With automorphism breaking ON (the default), the service must
    emit exactly the sequential matcher's representative set."""
    instance = make_instance(seed)
    if instance is None:
        pytest.skip("seed yields no connected query")
    query, data = instance
    expected = _fresh(query, data, break_automorphisms=True).embeddings
    with MatchService(data, workers=2) as service:
        cold = service.match(MatchRequest(query))
        warm = service.match(MatchRequest(query))
    assert cold.ok and cold.embeddings == expected
    assert warm.ok and warm.cache == "hit" and warm.embeddings == expected


def test_relabeled_isomorphic_query_is_set_identical():
    """An isomorphic-but-relabeled repeat hits the same cache slot; its
    transplanted index must yield the same embedding *set* as a fresh
    build for that labeling (order may differ — the tree is the
    representative's image, not this labeling's own BFS)."""
    instance = make_instance(2)
    assert instance is not None
    query, data = instance
    perm = list(range(query.num_vertices))
    perm = perm[1:] + perm[:1]  # rotate vertex names
    relabeled = Graph(
        query.num_vertices,
        [(perm[s], perm[d]) for s, d in query.edges],
        labels={perm[u]: query.labels_of(u) for u in query.vertices()},
    )
    expected = set(_fresh(relabeled, data).embeddings)
    with MatchService(data, workers=2) as service:
        first = service.match(MatchRequest(query, break_automorphisms=False))
        second = service.match(
            MatchRequest(relabeled, break_automorphisms=False)
        )
    assert first.ok and first.cache == "miss"
    assert second.ok and second.cache == "hit"
    assert set(second.embeddings) == expected
    assert len(second.embeddings) == len(expected)


def test_spill_revival_is_bit_identical(tmp_path):
    """Evict through a capacity-1 LRU into the CECIIDX3 spill tier and
    revive: the warm response must equal the cold one exactly."""
    instance = make_instance(5)
    assert instance is not None
    query, data = instance
    # An unlabeled path with one more vertex: structurally guaranteed to
    # live in a different cache slot than ``query``.
    n = query.num_vertices + 1
    evictor_query = Graph(n, [(i, i + 1) for i in range(n - 1)])
    with MatchService(
        data, workers=2, index_capacity=1, spill_dir=str(tmp_path)
    ) as service:
        cold = service.match(MatchRequest(query, break_automorphisms=False))
        # A different query class evicts (and spills) the first index.
        service.match(MatchRequest(evictor_query, break_automorphisms=False))
        revived = service.match(
            MatchRequest(query, break_automorphisms=False)
        )
    assert cold.ok and cold.cache == "miss"
    assert revived.ok and revived.cache == "warm"
    assert revived.embeddings == cold.embeddings
    snapshot = service.index_cache.snapshot()
    assert snapshot["spills"] >= 1 and snapshot["warm_hits"] == 1


def test_budget_deadline_during_build_truncates_like_sequential():
    instance = make_instance(3)
    assert instance is not None
    query, data = instance
    budget = Budget(deadline_seconds=1e-9)
    fresh = _fresh(query, data, budget=budget)
    assert fresh.truncated and fresh.embeddings == []
    with MatchService(data, workers=2) as service:
        response = service.match(
            MatchRequest(query, budget=budget, break_automorphisms=False)
        )
    assert response.status == Status.TRUNCATED
    assert response.truncated and response.embeddings == []
    assert response.stats.budget_stops >= 1


def test_unsatisfiable_query_returns_ok_empty():
    data = Graph(4, [(0, 1), (1, 2), (2, 3)], labels=["x", "x", "x", "x"])
    query = Graph(2, [(0, 1)], labels=["z", "z"])
    with MatchService(data, workers=1) as service:
        response = service.match(MatchRequest(query))
    assert response.status == Status.OK
    assert response.embeddings == [] and not response.truncated


def test_failed_preparation_is_isolated():
    """One request whose index resolution explodes must come back
    FAILED — and the scheduler thread must survive to serve the next."""
    instance = make_instance(1)
    assert instance is not None
    query, data = instance
    with MatchService(data, workers=2) as service:
        original = service.index_cache.get_or_build
        calls = []

        def sabotaged(q, build):
            if not calls:
                calls.append(1)
                raise RuntimeError("sabotaged build")
            return original(q, build)

        service.index_cache.get_or_build = sabotaged
        try:
            failed = service.match(
                MatchRequest(query, break_automorphisms=False)
            )
            recovered = service.match(
                MatchRequest(query, break_automorphisms=False)
            )
        finally:
            service.index_cache.get_or_build = original
    assert failed.status == Status.FAILED
    assert "sabotaged" in (failed.error or "")
    assert recovered.ok
    assert recovered.embeddings == _fresh(query, data).embeddings


def test_response_stats_are_request_local():
    """A response's counters describe that request alone: the embedding
    counter equals the response length even after unrelated requests
    ran concurrently through the same service."""
    instance = make_instance(6)
    assert instance is not None
    query, data = instance
    with MatchService(data, workers=2) as service:
        handles = [
            service.submit(MatchRequest(query, break_automorphisms=False))
            for _ in range(6)
        ]
        responses = [handle.result(timeout=30) for handle in handles]
    for response in responses:
        assert response.ok
        assert response.stats.embeddings_found == response.count


def test_request_validation():
    with pytest.raises(ValueError):
        MatchRequest(Graph(0, []))
    with pytest.raises(ValueError):
        MatchRequest(Graph(3, [(0, 1)]))  # disconnected
    with pytest.raises(ValueError):
        MatchRequest(Graph(2, [(0, 1)]), kernel="nope")
    with pytest.raises(ValueError):
        MatchRequest(Graph(2, [(0, 1)]), limit=-1)
    assert MatchRequest(Graph(2, [(0, 1)]), limit=0).solo
    assert MatchRequest(Graph(2, [(0, 1)]), budget=Budget(max_calls=1)).solo
    assert not MatchRequest(Graph(2, [(0, 1)])).solo


def test_closed_service_refuses_submissions():
    data = Graph(3, [(0, 1), (1, 2)])
    service = MatchService(data, workers=1)
    service.close()
    service.close()  # idempotent
    with pytest.raises(RuntimeError):
        service.submit(MatchRequest(Graph(2, [(0, 1)])))
