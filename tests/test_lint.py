"""Static-hygiene checks that would have caught the ``Optional``
import bug.

``repro.core.ceci`` once annotated ``nte_sets``/``te_sets`` with
``Optional`` without importing it — harmless under ``from __future__
import annotations`` (annotations stay strings) but a latent
``NameError`` for anything that evaluates them.  Two layers of defence:

* a dependency-free sweep that *evaluates* every annotation in every
  ``repro`` module via :func:`typing.get_type_hints` — an unimported
  typing name blows up here immediately;
* a pyflakes pass over the source tree (skipped when pyflakes is not
  installed locally; CI's lint job always runs it) that rejects any
  undefined name, annotation or otherwise.

The sweep's ``localns`` contains only classes *defined by repro* — so
``TYPE_CHECKING``-guarded forward references to our own types resolve,
while a missing ``typing`` import still fails exactly as it should.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import typing
from pathlib import Path

import pytest

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent


def _repro_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        modules.append(importlib.import_module(info.name))
    return modules


_MODULES = _repro_modules()

#: Every class repro defines, by bare name — the only names (besides
#: each module's own globals) the annotation sweep may resolve against.
_REPRO_CLASSES = {
    name: obj
    for module in _MODULES
    for name, obj in vars(module).items()
    if inspect.isclass(obj)
    and getattr(obj, "__module__", "").startswith("repro")
}


@pytest.mark.parametrize("module", _MODULES, ids=lambda m: m.__name__)
def test_every_annotation_resolves(module):
    for name, obj in sorted(vars(module).items()):
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are checked in their home module
        if inspect.isclass(obj):
            typing.get_type_hints(obj, localns=_REPRO_CLASSES)
            for _, member in inspect.getmembers(obj, inspect.isfunction):
                if member.__module__ == module.__name__:
                    typing.get_type_hints(member, localns=_REPRO_CLASSES)
        elif inspect.isfunction(obj):
            typing.get_type_hints(obj, localns=_REPRO_CLASSES)


def test_sweep_catches_the_original_bug_class():
    """Regression meta-test: an ``Optional`` annotation with no import
    must fail the sweep (this is the exact historical ceci.py bug).
    The annotation is attached dynamically so the lint pass itself
    doesn't (correctly!) flag this file."""

    def buggy(x):
        return None

    buggy.__annotations__ = {"x": "Optional[int]", "return": "None"}
    with pytest.raises(NameError):
        typing.get_type_hints(buggy, globalns={}, localns=_REPRO_CLASSES)


def test_pyflakes_reports_no_undefined_names():
    pyflakes_api = pytest.importorskip(
        "pyflakes.api", reason="pyflakes not installed (CI lint job runs it)"
    )
    from pyflakes.reporter import Reporter

    class _Collector:
        def __init__(self):
            self.lines = []

        def write(self, text):
            self.lines.append(text)

        def flush(self):
            pass

    out, err = _Collector(), _Collector()
    reporter = Reporter(out, err)
    for path in sorted(SRC_ROOT.rglob("*.py")):
        pyflakes_api.checkPath(str(path), reporter=reporter)
    undefined = [
        line
        for line in "".join(out.lines).splitlines()
        if "undefined name" in line
    ]
    assert not undefined, "\n".join(undefined)
    assert not err.lines, "".join(err.lines)
