"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

from typing import List, Set, Tuple

import pytest

from repro.graph import Graph, erdos_renyi, generate_query, inject_labels


def brute_force_embeddings(query: Graph, data: Graph) -> Set[Tuple[int, ...]]:
    """Independent reference: all injective, edge- and label-preserving
    mappings, found by naive backtracking over query vertices 0..n-1."""
    results: Set[Tuple[int, ...]] = set()
    qn = query.num_vertices

    def rec(depth: int, mapping: List[int], used: Set[int]) -> None:
        if depth == qn:
            results.add(tuple(mapping))
            return
        for v in data.vertices():
            if v in used:
                continue
            if not (query.labels_of(depth) <= data.labels_of(v)):
                continue
            ok = True
            for s, d in query.edges:
                other = -1
                if s == depth and d < depth:
                    other = d
                elif d == depth and s < depth:
                    other = s
                if other >= 0 and not data.has_edge(v, mapping[other]):
                    ok = False
                    break
            if ok:
                mapping.append(v)
                used.add(v)
                rec(depth + 1, mapping, used)
                mapping.pop()
                used.discard(v)

    rec(0, [], set())
    return results


def random_labeled_instance(seed: int, max_labels: int = 3):
    """A reproducible random (query, data) pair, or None when the random
    graph is too fragmented to extract a connected query."""
    import random

    rng = random.Random(seed)
    n = rng.randint(6, 14)
    e = rng.randint(n, min(n * (n - 1) // 2, 2 * n))
    data = erdos_renyi(n, e, seed=seed)
    data = inject_labels(data, rng.randint(1, max_labels), seed=seed)
    try:
        query = generate_query(data, rng.randint(2, 5), seed=seed * 3 + 1)
    except ValueError:
        return None
    return query, data


@pytest.fixture
def triangle() -> Graph:
    """The 3-clique with uniform labels."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def paper_query() -> Graph:
    """The 5-vertex query graph of Figure 1: labels A,B,C,D,E; edges
    (u1,u2),(u1,u3),(u2,u3),(u2,u4),(u3,u4),(u3,u5)."""
    return Graph(
        5,
        [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4)],
        labels=["A", "B", "C", "D", "E"],
    )


@pytest.fixture
def paper_data() -> Graph:
    """A data graph realizing Figure 1's two embeddings
    (v1,v3,v4,v11,v12) and (v1,v5,v6,v13,v14) plus false candidates."""
    # vertex ids 0..15 play v0..v15 (v0 is a filler with label Z)
    labels = {
        0: "Z",
        1: "A", 2: "A",
        3: "B", 5: "B", 7: "B", 9: "B",
        4: "C", 6: "C", 8: "C", 10: "C",
        11: "D", 13: "D", 15: "D",
        12: "E", 14: "E",
    }
    edges = [
        # pivot v1 wiring
        (1, 3), (1, 5), (1, 7),       # v1 - candidates of u2
        (1, 4), (1, 6),               # v1 - candidates of u3
        (3, 4), (5, 4), (5, 6), (7, 6),  # u2-u3 non-tree edge candidates
        (3, 11), (5, 13), (7, 15),    # u2 - u4 tree edge
        (4, 11), (6, 13),             # u3 - u4 non-tree edge
        (4, 12), (6, 14),             # u3 - u5 tree edge
        # pivot v2 wiring: v9 passes the u2 filters (A, C, D neighbors);
        # v8 passes DF for u3 (degree 4) but has no E neighbor -> NLCF
        # kills it, emptying u3's entry for v2 and cascading v2 away.
        (2, 7), (2, 9), (2, 8), (9, 8), (9, 15), (8, 15), (8, 11),
        # v15 needs a C neighbor to survive the u4 filters; it then dies
        # in refinement (not adjacent to any NTE candidate of u4), which
        # in turn kills v7 for u2 -- the Figure 3(c) green removals.
        (0, 15),
        # Satellite community: gives u3 five initial candidates (paper
        # cost 1.25) without touching the pivots' frontiers, so the root
        # cost ranking matches Section 2.2 (u1 = 1 is the argmin).
        (10, 16), (10, 17), (10, 18), (10, 19),
        (20, 16), (20, 17), (20, 18), (20, 19),
        (21, 16), (21, 17), (21, 18), (21, 19),
    ]
    labels.update({16: "A", 17: "B", 18: "D", 19: "E", 20: "C", 21: "C"})
    return Graph(22, edges, labels=labels)
