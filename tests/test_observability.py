"""Tests for the observability layer (DESIGN.md §9).

Covers the tracer's span pairing and nesting invariants, the metrics
registry's declared merge semantics (sum counters vs. peak gauges), the
progress reporter, and the headline acceptance criterion: the phase
totals reported by ``trace summarize`` agree with the run's
``MatchStats.phase_seconds`` — for single-process, ``--workers K`` and
distributed runs alike — because both sides book the *same float*.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.core import CECIMatcher
from repro.core.stats import MatchStats, match_metric_specs
from repro.distributed import DistributedCECI
from repro.graph import Graph, erdos_renyi, generate_query, inject_labels
from repro.observability import (
    METRICS_SCHEMA,
    MetricSpec,
    MetricsRegistry,
    NULL_TRACER,
    ProgressReporter,
    TraceError,
    Tracer,
    kernel_events,
    read_trace,
    summarize_trace,
)
from repro.parallel import parallel_match


@pytest.fixture
def instance():
    """A labeled (query, data) pair with a few hundred embeddings."""
    data = inject_labels(erdos_renyi(60, 240, seed=5), 2, seed=5)
    query = generate_query(data, 4, seed=17)
    return query, data


def _trace_path(tmp_path) -> str:
    return str(tmp_path / "run.jsonl")


def _events(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_meta_first_and_schema(self, tmp_path):
        path = _trace_path(tmp_path)
        tracer = Tracer(path)
        tracer.close()
        events = _events(path)
        assert events[0]["ev"] == "meta"
        assert events[0]["schema"] == 1

    def test_span_pairing_and_nesting(self, tmp_path):
        path = _trace_path(tmp_path)
        tracer = Tracer(path)
        with tracer.span("outer"):
            with tracer.span("inner", u=3):
                pass
        tracer.close()
        events = _events(path)
        begins = [e for e in events if e["ev"] == "b"]
        ends = [e for e in events if e["ev"] == "e"]
        assert [e["name"] for e in begins] == ["outer", "inner"]
        # LIFO: inner ends before outer.
        assert [e["name"] for e in ends] == ["inner", "outer"]
        by_name = {e["name"]: e for e in begins}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert all(e["dur"] >= 0 for e in ends)
        # The validator accepts what the tracer wrote.
        summary = read_trace(path)
        assert summary.spans["inner"]["count"] == 1

    def test_phase_carries_caller_duration(self, tmp_path):
        path = _trace_path(tmp_path)
        tracer = Tracer(path)
        tracer.phase("filter", tracer._origin, 0.125)
        tracer.close()
        phases = [e for e in _events(path) if e["ev"] == "p"]
        assert phases[0]["name"] == "filter"
        assert phases[0]["dur"] == 0.125

    def test_scoped_tags_every_event(self, tmp_path):
        path = _trace_path(tmp_path)
        tracer = Tracer(path)
        scoped = tracer.scoped(machine=2)
        with scoped.span("work"):
            scoped.instant("ping")
        scoped.phase("enumerate", tracer._origin, 0.5)
        tracer.close()
        tagged = [e for e in _events(path) if e["ev"] in ("b", "e", "p", "i")]
        assert tagged and all(e["machine"] == 2 for e in tagged)

    def test_kernel_sampling_stride(self, tmp_path):
        path = _trace_path(tmp_path)
        tracer = Tracer(path, sample_kernel_every=10)
        for _ in range(25):
            tracer.observe_kernel("merge", [[1, 2], [2, 3]], [2])
        tracer.close()
        kernels = [
            e for e in _events(path)
            if e["ev"] == "i" and e["name"] == "kernel"
        ]
        assert len(kernels) == 3  # dispatches 1, 11, 21

    def test_writes_to_caller_owned_stream(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("s"):
            pass
        tracer.close()
        lines = sink.getvalue().strip().splitlines()
        assert json.loads(lines[0])["ev"] == "meta"
        assert len(lines) == 3

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("x") as span:
            assert span.duration == 0.0
        NULL_TRACER.phase("p", 0.0, 1.0)
        NULL_TRACER.instant("i")
        NULL_TRACER.observe_kernel("merge", [], [])
        assert NULL_TRACER.scoped(worker=1) is NULL_TRACER
        NULL_TRACER.close()


# ---------------------------------------------------------------------------
# Trace validation
# ---------------------------------------------------------------------------
class TestTraceValidation:
    def _write(self, tmp_path, lines) -> str:
        path = _trace_path(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(json.dumps(e) for e in lines) + "\n")
        return path

    META = {"t": 0.0, "ev": "meta", "schema": 1, "tid": 0}

    def test_empty_file_rejected(self, tmp_path):
        path = _trace_path(tmp_path)
        open(path, "w").close()
        with pytest.raises(TraceError, match="empty trace"):
            read_trace(path)

    def test_first_line_must_be_meta(self, tmp_path):
        path = self._write(
            tmp_path, [{"t": 0.0, "ev": "i", "name": "x", "tid": 0}]
        )
        with pytest.raises(TraceError, match="must be 'meta'"):
            read_trace(path)

    def test_unsupported_schema_rejected(self, tmp_path):
        path = self._write(tmp_path, [{**self.META, "schema": 99}])
        with pytest.raises(TraceError, match="unsupported trace schema"):
            read_trace(path)

    def test_unclosed_span_rejected(self, tmp_path):
        path = self._write(tmp_path, [
            self.META,
            {"t": 0.1, "ev": "b", "id": 1, "parent": None,
             "name": "s", "tid": 0},
        ])
        with pytest.raises(TraceError, match="unclosed span"):
            read_trace(path)

    def test_improper_nesting_rejected(self, tmp_path):
        path = self._write(tmp_path, [
            self.META,
            {"t": 0.1, "ev": "b", "id": 1, "parent": None,
             "name": "a", "tid": 0},
            {"t": 0.2, "ev": "b", "id": 2, "parent": 1,
             "name": "b", "tid": 0},
            {"t": 0.3, "ev": "e", "id": 1, "name": "a",
             "dur": 0.2, "tid": 0},
        ])
        with pytest.raises(TraceError, match="improper nesting"):
            read_trace(path)

    def test_negative_duration_rejected(self, tmp_path):
        path = self._write(tmp_path, [
            self.META,
            {"t": 0.1, "ev": "p", "name": "filter", "dur": -1.0, "tid": 0},
        ])
        with pytest.raises(TraceError, match="negative duration"):
            read_trace(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = self._write(tmp_path, [
            self.META,
            {"t": 0.1, "ev": "zz", "name": "x", "tid": 0},
        ])
        with pytest.raises(TraceError, match="unknown event kind"):
            read_trace(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = _trace_path(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.META) + "\n{not json\n")
        with pytest.raises(TraceError, match="invalid JSON"):
            read_trace(path)

    def test_worker_streams_pair_independently(self, tmp_path):
        # Interleaved begin/ends are fine when they belong to different
        # worker streams — pairing is per (machine, worker, tid).
        path = self._write(tmp_path, [
            self.META,
            {"t": 0.1, "ev": "b", "id": 1, "parent": None,
             "name": "unit", "tid": 0, "worker": 0},
            {"t": 0.2, "ev": "b", "id": 2, "parent": None,
             "name": "unit", "tid": 1, "worker": 1},
            {"t": 0.3, "ev": "e", "id": 1, "name": "unit",
             "dur": 0.2, "tid": 0, "worker": 0},
            {"t": 0.4, "ev": "e", "id": 2, "name": "unit",
             "dur": 0.2, "tid": 1, "worker": 1},
        ])
        assert read_trace(path).spans["unit"]["count"] == 2


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_sum_on_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("calls", 3)
        b.inc("calls", 4)
        assert a.merge(b).get("calls") == 7

    def test_peak_gauge_keeps_max(self):
        spec = MetricSpec("memory_bytes", kind="gauge", merge="max")
        a, b = MetricsRegistry([spec]), MetricsRegistry([spec])
        a.set_gauge("memory_bytes", 100)
        b.set_gauge("memory_bytes", 250)
        a.merge(b)
        assert a.get("memory_bytes") == 250
        # Peak, not sum — and merging the smaller back changes nothing.
        a.merge(b)
        assert a.get("memory_bytes") == 250

    def test_labeled_family_sums_per_label(self):
        spec = MetricSpec("phase_seconds", labeled=True, label_name="phase")
        a, b = MetricsRegistry([spec]), MetricsRegistry([spec])
        a.inc("phase_seconds", 1.0, label="filter")
        b.inc("phase_seconds", 0.5, label="filter")
        b.inc("phase_seconds", 2.0, label="enumerate")
        assert a.merge(b).labels("phase_seconds") == {
            "filter": 1.5, "enumerate": 2.0,
        }

    def test_histogram_summaries_combine(self):
        spec = MetricSpec("depth", kind="histogram")
        a, b = MetricsRegistry([spec]), MetricsRegistry([spec])
        a.observe("depth", 2)
        a.observe("depth", 8)
        b.observe("depth", 5)
        merged = a.merge(b).get("depth")
        assert merged == {"count": 3.0, "sum": 15.0, "min": 2.0, "max": 8.0}

    def test_as_dict_carries_schema(self):
        reg = MetricsRegistry()
        reg.inc("x")
        dump = reg.as_dict()
        assert dump["schema"] == METRICS_SCHEMA
        assert dump["metrics"]["x"] == 1

    def test_prom_exposition(self):
        spec = MetricSpec("phase_seconds", labeled=True, label_name="phase")
        reg = MetricsRegistry([spec])
        reg.inc("calls", 7)
        reg.inc("phase_seconds", 0.25, label="filter")
        text = reg.to_prom()
        assert "# TYPE repro_calls counter" in text
        assert "repro_calls 7" in text
        assert 'repro_phase_seconds{phase="filter"} 0.25' in text

    def test_kind_and_merge_validated(self):
        with pytest.raises(ValueError):
            MetricSpec("x", kind="timer")
        with pytest.raises(ValueError):
            MetricSpec("x", merge="avg")
        reg = MetricsRegistry()
        reg.inc("c")
        with pytest.raises(ValueError):
            reg.set_gauge("c", 1)


# ---------------------------------------------------------------------------
# MatchStats as a registry view
# ---------------------------------------------------------------------------
class TestMatchStatsMerge:
    def test_work_counters_sum(self):
        a, b = MatchStats(), MatchStats()
        a.recursive_calls, b.recursive_calls = 10, 32
        a.cache_hits, b.cache_hits = 1, 2
        a.merge(b)
        assert a.recursive_calls == 42
        assert a.cache_hits == 3

    def test_memory_bytes_keeps_peak(self):
        a, b = MatchStats(), MatchStats()
        a.memory_bytes, b.memory_bytes = 1000, 400
        a.merge(b)
        assert a.memory_bytes == 1000  # max, not 1400

    def test_phase_seconds_sum_per_phase(self):
        a, b = MatchStats(), MatchStats()
        a.add_phase("enumerate", 1.0)
        b.add_phase("enumerate", 0.25)
        b.add_phase("filter", 0.5)
        a.merge(b)
        assert a.phase_seconds == {"enumerate": 1.25, "filter": 0.5}

    def test_registry_round_trip(self):
        stats = MatchStats()
        stats.recursive_calls = 9
        stats.memory_bytes = 512
        stats.add_phase("refine", 0.125)
        clone = MatchStats()
        clone.apply_registry(stats.registry())
        assert clone.recursive_calls == 9
        assert clone.memory_bytes == 512
        assert clone.phase_seconds == {"refine": 0.125}

    def test_specs_cover_every_field(self):
        from dataclasses import fields

        names = {spec.name for spec in match_metric_specs()}
        assert names == {f.name for f in fields(MatchStats)}


# ---------------------------------------------------------------------------
# Progress reporter
# ---------------------------------------------------------------------------
class TestProgressReporter:
    def test_emits_heartbeats(self):
        stats = MatchStats()
        out = io.StringIO()
        progress = ProgressReporter(
            stats, interval=0.0, stream=out, check_every=10,
            total_estimate=1000,
        )
        for _ in range(50):
            stats.recursive_calls += 1
            stats.embeddings_found += 1
            progress.tick()
        progress.finish()
        lines = out.getvalue().strip().splitlines()
        assert progress.lines_emitted == len(lines) >= 2
        assert lines[-1].endswith("(done)")
        assert "calls=50" in lines[-1]
        assert "eta<=" in lines[-1]

    def test_silent_when_never_ticked(self):
        out = io.StringIO()
        ProgressReporter(MatchStats(), stream=out).finish()
        assert out.getvalue() == ""

    def test_short_run_still_gets_final_line(self):
        # Fewer ticks than check_every: no heartbeat fires, but finish()
        # still reports the run.
        stats = MatchStats()
        out = io.StringIO()
        progress = ProgressReporter(stats, interval=0.0, stream=out)
        progress.start()
        stats.recursive_calls = 3
        for _ in range(3):
            progress.tick()
        progress.finish()
        assert out.getvalue().count("\n") == 1

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            ProgressReporter(MatchStats(), interval=-1.0)

    def test_heartbeats_mirrored_into_trace(self, tmp_path):
        path = _trace_path(tmp_path)
        tracer = Tracer(path)
        stats = MatchStats()
        progress = ProgressReporter(
            stats, interval=0.0, stream=io.StringIO(),
            check_every=1, tracer=tracer,
        )
        stats.recursive_calls = 1
        progress.tick()
        progress.finish()
        tracer.close()
        instants = [
            e for e in _events(path)
            if e["ev"] == "i" and e["name"] == "progress"
        ]
        assert instants and instants[-1]["final"] is True


# ---------------------------------------------------------------------------
# End-to-end: trace totals == stats totals (the acceptance criterion)
# ---------------------------------------------------------------------------
def _assert_agreement(stats: MatchStats, trace_path: str) -> None:
    """Per-phase trace totals must match MatchStats within 1% (they are
    the same floats, so the observed error is ~0)."""
    traced = read_trace(trace_path).phase_seconds()
    assert set(traced) == set(stats.phase_seconds)
    for name, seconds in stats.phase_seconds.items():
        assert traced[name] == pytest.approx(seconds, rel=0.01, abs=1e-12), (
            name
        )


class TestTraceStatsAgreement:
    def test_single_process(self, instance, tmp_path):
        query, data = instance
        path = _trace_path(tmp_path)
        tracer = Tracer(path)
        matcher = CECIMatcher(query, data, tracer=tracer)
        with kernel_events(tracer):
            matcher.match()
        tracer.close()
        _assert_agreement(matcher.stats, path)
        summary = read_trace(path)
        assert summary.spans.get("cluster", {}).get("count", 0) > 0

    def test_worker_threads(self, instance, tmp_path):
        query, data = instance
        path = _trace_path(tmp_path)
        tracer = Tracer(path)
        matcher = CECIMatcher(query, data, tracer=tracer)
        embeddings, reports = parallel_match(matcher, workers=3)
        tracer.close()
        _assert_agreement(matcher.stats, path)
        # Worker-tagged enumerate phases landed in the executor table.
        summary = read_trace(path)
        workers_seen = {
            executor for executor in summary.executors
            if executor[1] is not None
        }
        assert workers_seen
        # And the parallel run still matches the sequential answer.
        sequential = CECIMatcher(query, data).match()
        assert sorted(embeddings) == sorted(sequential)

    def test_distributed(self, instance, tmp_path):
        query, data = instance
        path = _trace_path(tmp_path)
        tracer = Tracer(path)
        runtime = DistributedCECI(query, data, num_machines=3, tracer=tracer)
        result = runtime.run()
        tracer.close()
        _assert_agreement(result.stats, path)
        summary = read_trace(path)
        machines_seen = {
            executor[0] for executor in summary.executors
            if executor[0] is not None
        }
        assert len(machines_seen) > 1


# ---------------------------------------------------------------------------
# Kernel observer plumbing
# ---------------------------------------------------------------------------
class TestKernelEvents:
    def test_installs_and_restores(self, instance, tmp_path):
        from repro.kernels import kernel_observer

        query, data = instance
        path = _trace_path(tmp_path)
        tracer = Tracer(path, sample_kernel_every=1)
        assert kernel_observer() is None
        matcher = CECIMatcher(query, data, tracer=tracer)
        with kernel_events(tracer):
            assert kernel_observer() is not None
            matcher.match()
        assert kernel_observer() is None
        tracer.close()
        summary = read_trace(path)
        assert sum(summary.kernels.values()) > 0

    def test_noop_for_disabled_tracer(self):
        from repro.kernels import kernel_observer

        with kernel_events(NULL_TRACER):
            assert kernel_observer() is None


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCLI:
    @pytest.fixture
    def files(self, tmp_path):
        from repro.graph import save_graph_format

        triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
        data = Graph(
            6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)]
        )
        qpath = str(tmp_path / "q.graph")
        dpath = str(tmp_path / "d.graph")
        save_graph_format(triangle, qpath)
        save_graph_format(data, dpath)
        return qpath, dpath, tmp_path

    def test_match_json_schema(self, files, capsys):
        from repro.cli import main

        qpath, dpath, _ = files
        assert main(["match", qpath, dpath, "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["schema"] == 1
        assert payload["count"] == 2
        assert payload["stats"]["recursive_calls"] > 0
        # JSON mode silences the stderr counter lines.
        assert "#" not in captured.err

    def test_count_json_schema(self, files, capsys):
        from repro.cli import main

        qpath, dpath, _ = files
        assert main(["count", qpath, dpath, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["schema"] == 1

    def test_stats_json_schema(self, files, capsys):
        from repro.cli import main

        qpath, dpath, _ = files
        assert main(["stats", qpath, dpath]) == 0
        assert json.loads(capsys.readouterr().out)["schema"] == 1

    def test_trace_flag_and_summarize(self, files, capsys):
        from repro.cli import main

        qpath, dpath, tmp_path = files
        trace = str(tmp_path / "t.jsonl")
        assert main(["match", qpath, dpath, "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", trace]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "enumerate" in out

    def test_trace_summarize_json(self, files, capsys):
        from repro.cli import main

        qpath, dpath, tmp_path = files
        trace = str(tmp_path / "t.jsonl")
        main(["count", qpath, dpath, "--trace", trace, "--workers", "2"])
        capsys.readouterr()
        assert main(["trace", "summarize", trace, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert "enumerate" in payload["phases"]

    def test_trace_summarize_missing_file(self, files, capsys):
        from repro.cli import main

        assert main(["trace", "summarize", "/nonexistent.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_summarize_malformed_file(self, files, capsys):
        from repro.cli import main

        _, _, tmp_path = files
        bad = str(tmp_path / "bad.jsonl")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write('{"ev": "i", "name": "x", "t": 0.0}\n')
        assert main(["trace", "summarize", bad]) == 2
        assert "meta" in capsys.readouterr().err

    def test_metrics_json_on_stderr(self, files, capsys):
        from repro.cli import main

        qpath, dpath, _ = files
        assert main(["count", qpath, dpath, "--metrics", "json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(
            captured.err[captured.err.index("{"):]
        )
        assert payload["schema"] == 1
        assert payload["metrics"]["embeddings_found"] == 2

    def test_metrics_prom_on_stderr(self, files, capsys):
        from repro.cli import main

        qpath, dpath, _ = files
        assert main(["count", qpath, dpath, "--metrics", "prom"]) == 0
        assert "# TYPE repro_recursive_calls counter" in (
            capsys.readouterr().err
        )

    def test_progress_final_line(self, files, capsys):
        from repro.cli import main

        qpath, dpath, _ = files
        assert main([
            "count", qpath, dpath, "--progress", "--progress-interval", "0",
        ]) == 0
        assert "(done)" in capsys.readouterr().err

    def test_progress_final_line_under_workers(self, files, capsys):
        # Workers tick their own enumerators, not the CLI reporter, so
        # the parallel branch force-emits one merged-stats summary.
        from repro.cli import main

        qpath, dpath, _ = files
        assert main([
            "count", qpath, dpath, "--progress", "--workers", "2",
        ]) == 0
        err = capsys.readouterr().err
        assert "(done)" in err
        assert "calls=" in err

    def test_progress_interval_validated(self, files):
        from repro.cli import main

        qpath, dpath, _ = files
        with pytest.raises(SystemExit):
            main(["count", qpath, dpath, "--progress-interval", "-1"])


# ---------------------------------------------------------------------------
# Batched progress ticks (DESIGN.md §13 satellite)
# ---------------------------------------------------------------------------
class TestTickMany:
    def _reporter(self, **kwargs):
        stats = MatchStats()
        out = io.StringIO()
        defaults = dict(interval=0.0, stream=out, check_every=10)
        defaults.update(kwargs)
        return stats, out, ProgressReporter(stats, **defaults)

    def test_zero_and_negative_are_noops(self):
        _, out, progress = self._reporter()
        progress.tick_many(0)
        progress.tick_many(-5)
        progress.finish()
        # No real work was ever ticked, so finish() stays silent too.
        assert out.getvalue() == ""
        assert progress.lines_emitted == 0

    def test_huge_single_increment_emits(self):
        # One batch far larger than check_every must trip the clock
        # check on that very call, not wait for a later tick.
        stats, out, progress = self._reporter(check_every=10)
        stats.recursive_calls = 1_000_000
        progress.tick_many(1_000_000)
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert "calls=1000000" in lines[0]

    def test_final_done_line_after_batched_ticks(self):
        # Batches that never reach check_every never consult the clock,
        # but finish() still owes the run its closing summary.
        stats, out, progress = self._reporter(check_every=1000)
        stats.recursive_calls = 30
        stats.embeddings_found = 4
        for _ in range(3):
            progress.tick_many(10)
        progress.finish()
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert lines[-1].endswith("(done)")
        assert "calls=30" in lines[-1]
        assert "embeddings=4" in lines[-1]

    def test_mixed_tick_and_tick_many_share_the_counter(self):
        # 3 singles + a batch of 4 crosses check_every=7 exactly once.
        stats, out, progress = self._reporter(check_every=7)
        for _ in range(3):
            progress.tick()
        progress.tick_many(4)
        assert progress.lines_emitted == 1
        progress.finish()
        assert out.getvalue().strip().splitlines()[-1].endswith("(done)")


# ---------------------------------------------------------------------------
# Labeled-family folds under concurrency + prom exposition details
# ---------------------------------------------------------------------------
class TestRegistryFolds:
    def test_concurrent_labeled_folds_are_exact(self):
        # Mirrors the service's continuous fold: every request finishes
        # with its own registry, and a shared lock serialises the merge
        # into the service-wide one (service.py holds _fold_lock).  The
        # folded totals must be exact — a lost increment here would make
        # the /metrics endpoint quietly lie.
        specs = [
            MetricSpec(
                "service_requests_total", labeled=True, label_name="status"
            ),
            MetricSpec("depth", kind="histogram"),
        ]
        target = MetricsRegistry(specs)
        fold_lock = threading.Lock()
        statuses = ["ok", "error", "timeout"]

        def fold_requests(worker: int) -> None:
            for i in range(50):
                per_request = MetricsRegistry(specs)
                per_request.inc(
                    "service_requests_total",
                    label=statuses[(worker + i) % len(statuses)],
                )
                per_request.inc("recursive_calls", 3)
                per_request.observe("depth", float(i % 7))
                with fold_lock:
                    target.merge(per_request)

        threads = [
            threading.Thread(target=fold_requests, args=(w,))
            for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        family = target.labels("service_requests_total")
        assert sum(family.values()) == 200
        assert set(family) == set(statuses)
        assert target.get("recursive_calls") == 600
        assert target.get("depth")["count"] == 200.0

    def test_merge_is_safe_against_live_source(self):
        # A scrape folds the live registry while workers keep
        # incrementing it; the copy-iteration in merge() must never
        # blow up with a resized-dict error.
        spec = MetricSpec("phase_seconds", labeled=True, label_name="phase")
        live = MetricsRegistry([spec])
        stop = threading.Event()

        def mutate() -> None:
            i = 0
            while not stop.is_set():
                live.inc("phase_seconds", 0.001, label=f"phase{i % 13}")
                live.inc(f"counter{i % 17}")
                i += 1

        mutator = threading.Thread(target=mutate)
        mutator.start()
        try:
            for _ in range(200):
                snapshot = MetricsRegistry()
                snapshot.merge(live)
                assert snapshot.as_dict()["schema"] == METRICS_SCHEMA
        finally:
            stop.set()
            mutator.join()

    def test_prom_escapes_label_values(self):
        spec = MetricSpec("errors", labeled=True, label_name="detail")
        reg = MetricsRegistry([spec])
        reg.inc("errors", label='path\\tmp "x"\nline2')
        text = reg.to_prom()
        assert (
            'repro_errors{detail="path\\\\tmp \\"x\\"\\nline2"} 1' in text
        )
        # The escaped line must stay a single physical line.
        [series] = [
            line for line in text.splitlines()
            if line.startswith("repro_errors{")
        ]
        assert series.count('"') == 4

    def test_prom_histogram_summary_series(self):
        spec = MetricSpec("unit_seconds", kind="histogram")
        reg = MetricsRegistry([spec])
        for value in (0.5, 2.0, 1.0):
            reg.observe("unit_seconds", value)
        text = reg.to_prom()
        assert "# TYPE repro_unit_seconds summary" in text
        assert "repro_unit_seconds_count 3" in text
        assert "repro_unit_seconds_sum 3.5" in text
        assert "repro_unit_seconds_min 0.5" in text
        assert "repro_unit_seconds_max 2" in text


# ---------------------------------------------------------------------------
# Per-request trace summaries (repro trace summarize on service traces)
# ---------------------------------------------------------------------------
class TestSummarizePerRequest:
    def _service_style_trace(self, tmp_path) -> str:
        path = _trace_path(tmp_path)
        tracer = Tracer(path)
        for request_id, (filt, enum) in enumerate(
            [(0.25, 0.75), (0.1, 0.4)]
        ):
            scoped = tracer.scoped(request=request_id)
            scoped.phase("filter", 0.0, filt)
            scoped.phase("enumerate", filt, enum)
        # An untagged phase (e.g. index build shared across requests)
        # must contribute to the blended totals but no request's table.
        tracer.phase("build", 0.0, 0.5)
        tracer.close()
        return path

    def test_requests_group_into_separate_tables(self, tmp_path):
        path = self._service_style_trace(tmp_path)
        summary = read_trace(path)
        assert summary.requests == {
            0: {"filter": 0.25, "enumerate": 0.75},
            1: {"filter": 0.1, "enumerate": 0.4},
        }
        # Blended totals still include every phase, tagged or not.
        assert summary.phase_seconds()["build"] == pytest.approx(0.5)
        assert summary.phase_seconds()["filter"] == pytest.approx(0.35)

    def test_as_dict_and_render_carry_requests(self, tmp_path):
        path = self._service_style_trace(tmp_path)
        dump = json.loads(summarize_trace(path, as_json=True))
        assert dump["requests"]["0"]["enumerate"] == pytest.approx(0.75)
        rendered = summarize_trace(path)
        assert "per-request breakdown" in rendered
        # Each request's table closes with its own total row.
        assert rendered.count("total") >= 2

    def test_untagged_trace_renders_without_request_section(self, tmp_path):
        path = _trace_path(tmp_path)
        tracer = Tracer(path)
        tracer.phase("filter", 0.0, 0.2)
        tracer.close()
        rendered = summarize_trace(path)
        assert "per-request breakdown" not in rendered
