"""Kernel equivalence and cache behaviour (repro.kernels).

Every kernel must agree with naive ``set.intersection`` on adversarial
shapes — empty, singleton, disjoint, identical, heavily skewed — and the
adaptive dispatcher must both pick sensible kernels and return the exact
same result regardless of which one it picks.
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.kernels import (
    BITSET_MAX_SPAN,
    GALLOP_RATIO,
    DEFAULT_CACHE_SIZE,
    IntersectionCache,
    choose_kernel,
    dispatch,
    intersect,
    intersect_bitset,
    intersect_gallop,
    intersect_merge,
    set_check_sorted,
    sorted_checks_enabled,
)
from repro.core.ceci import intersect_sorted
from repro.core.stats import MatchStats

# The package re-exports a function named ``intersect`` which shadows the
# submodule attribute, so module internals (the numpy handle) are reached
# through sys.modules.
import repro.kernels.intersect  # noqa: F401  (registers the submodule)

_MODULE = sys.modules["repro.kernels.intersect"]

KERNELS = {
    "merge": intersect_merge,
    "gallop": intersect_gallop,
    "bitset": intersect_bitset,
}


def reference(lists):
    """Ground truth by built-in set semantics."""
    if not lists:
        return []
    result = set(lists[0])
    for values in lists[1:]:
        result &= set(values)
    return sorted(result)


ADVERSARIAL_CASES = [
    pytest.param([], id="no-lists"),
    pytest.param([[]], id="single-empty"),
    pytest.param([[5]], id="single-singleton"),
    pytest.param([list(range(10))], id="k1-passthrough"),
    pytest.param([[], [1, 2, 3]], id="empty-vs-nonempty"),
    pytest.param([[1, 2, 3], []], id="nonempty-vs-empty"),
    pytest.param([[7], [7]], id="matching-singletons"),
    pytest.param([[7], [8]], id="mismatching-singletons"),
    pytest.param([list(range(100)), list(range(100, 200))],
                 id="disjoint-ranges"),
    pytest.param([list(range(200, 300)), list(range(100))],
                 id="disjoint-ranges-reversed"),
    pytest.param([list(range(50)), list(range(50))], id="identical"),
    pytest.param([list(range(50)), list(range(50)), list(range(50))],
                 id="identical-x3"),
    pytest.param([list(range(0, 100, 2)), list(range(1, 100, 2))],
                 id="interleaved-disjoint"),
    pytest.param([[3, 50, 9999], list(range(10000))], id="skew-1-vs-10000"),
    pytest.param([list(range(10000)), [0, 9999]], id="skew-10000-vs-2"),
    pytest.param([[0, 10_000_000], [0, 10_000_000]], id="huge-span"),
    pytest.param([[-5, -3, 0, 2], [-4, -3, 2, 7]], id="negative-values"),
    pytest.param([list(range(64)), list(range(32, 96)),
                  list(range(16, 80))], id="k3-overlapping-windows"),
    pytest.param([[1, 2], [2, 3], [3, 4]], id="k3-pairwise-but-not-global"),
]


@pytest.mark.parametrize("lists", ADVERSARIAL_CASES)
@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_matches_set_semantics(name, lists):
    assert KERNELS[name](lists) == reference(lists)


@pytest.mark.parametrize("lists", ADVERSARIAL_CASES)
def test_dispatch_matches_set_semantics(lists):
    name, result = dispatch(lists, "auto")
    assert result == reference(lists)
    if len(lists) < 2 or any(not values for values in lists):
        assert name == "trivial"
    else:
        assert name in KERNELS


@pytest.mark.parametrize("seed", range(25))
def test_kernels_agree_on_random_inputs(seed):
    rng = random.Random(seed)
    k = rng.randint(2, 5)
    lists = []
    for _ in range(k):
        universe = rng.randint(1, 500)
        size = rng.randint(0, universe)
        lists.append(sorted(rng.sample(range(universe), size)))
    expect = reference(lists)
    for name, kernel in KERNELS.items():
        assert kernel(lists) == expect, name
    assert intersect(lists) == expect
    for name in KERNELS:
        assert intersect(lists, kernel=name) == expect


def test_bitset_fallback_path_without_numpy(monkeypatch):
    """The pure-Python bitset path must match the numpy path."""
    monkeypatch.setattr(_MODULE, "_np", None)
    rng = random.Random(99)
    for _ in range(20):
        lists = [
            sorted(rng.sample(range(256), rng.randint(0, 200)))
            for _ in range(rng.randint(2, 4))
        ]
        assert intersect_bitset(lists) == reference(lists)
    assert intersect_bitset([[3, 50, 9999], list(range(9999))]) == [3, 50]


def test_kernel_results_are_fresh_lists():
    a, b = [1, 2, 3], [2, 3, 4]
    for kernel in KERNELS.values():
        out = kernel([a, b])
        assert out == [2, 3]
        out.append(99)  # mutating the result must not corrupt the inputs
        assert a == [1, 2, 3] and b == [2, 3, 4]


# ----------------------------------------------------------------------
# Dispatcher choice
# ----------------------------------------------------------------------
class TestChooseKernel:
    def test_skewed_sizes_pick_gallop(self):
        short = [1, 500, 900]
        long = list(range(0, GALLOP_RATIO * len(short) * 10))
        assert choose_kernel([short, long]) == "gallop"
        assert dispatch([short, long])[0] == "gallop"

    def test_dense_small_span_picks_bitset(self):
        a = list(range(0, 512))
        b = list(range(256, 768))
        assert choose_kernel([a, b]) == "bitset"
        assert dispatch([a, b])[0] == "bitset"

    def test_sparse_comparable_sizes_pick_merge(self):
        step = 2 * BITSET_MAX_SPAN
        a = [i * step for i in range(64)]
        b = [i * step + step // 2 for i in range(64)] + [63 * step]
        assert choose_kernel([a, b]) == "merge"
        assert dispatch([a, b])[0] == "merge"

    def test_forced_kernel_is_honored(self):
        skewed = [[5], list(range(1000))]
        for name in KERNELS:
            got, result = dispatch(skewed, name)
            assert got == name
            assert result == [5]

    def test_unknown_kernel_raises(self):
        with pytest.raises(ValueError, match="unknown intersection kernel"):
            dispatch([[1], [1]], "quantum")
        with pytest.raises(ValueError, match="unknown intersection kernel"):
            dispatch([[1], [1], [1]], "quantum")

    def test_k3_dispatch_agrees_with_choice(self):
        lists = [list(range(30)), list(range(10, 40)), list(range(20, 50))]
        name, result = dispatch(lists)
        assert name == choose_kernel(lists)
        assert result == reference(lists)


# ----------------------------------------------------------------------
# Sorted-input debug assertion
# ----------------------------------------------------------------------
class TestSortedChecks:
    def test_unsorted_input_raises_when_enabled(self):
        was = sorted_checks_enabled()
        set_check_sorted(True)
        try:
            with pytest.raises(AssertionError, match="strictly increasing"):
                intersect_merge([[3, 1, 2], [1, 2, 3]])
            with pytest.raises(AssertionError):
                dispatch([[1, 1], [1]])  # duplicates are not allowed either
            with pytest.raises(AssertionError):
                intersect_sorted([[1, 2], [9, 4]])
        finally:
            set_check_sorted(was)

    def test_disabled_by_default_and_restorable(self):
        was = sorted_checks_enabled()
        set_check_sorted(False)
        try:
            # Garbage in, garbage out — but no crash when checks are off.
            intersect_merge([[3, 1], [3, 1]])
        finally:
            set_check_sorted(was)


# ----------------------------------------------------------------------
# intersect_sorted regression (the parameter-shadowing bug)
# ----------------------------------------------------------------------
class TestIntersectSortedRegression:
    def test_outer_list_is_not_reordered(self):
        long = list(range(100))
        short = [5, 50, 99]
        lists = [long, short]
        assert intersect_sorted(lists) == [5, 50, 99]
        # The historical bug sorted ``lists`` in place (shortest first).
        assert lists[0] is long and lists[1] is short

    def test_unequal_lengths_any_order(self):
        a = list(range(0, 60, 3))
        b = list(range(0, 60, 2))
        c = list(range(0, 60, 5))
        expect = [v for v in range(0, 60, 6) if v % 5 == 0]
        assert intersect_sorted([a, b, c]) == expect
        assert intersect_sorted([c, b, a]) == expect
        assert intersect_sorted([b, c, a]) == expect


# ----------------------------------------------------------------------
# IntersectionCache
# ----------------------------------------------------------------------
class TestIntersectionCache:
    def test_hit_miss_counters(self):
        cache = IntersectionCache(maxsize=8)
        assert cache.get(("u", 1, 2)) is None
        cache.put(("u", 1, 2), [3, 4])
        assert cache.get(("u", 1, 2)) == [3, 4]
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.evictions == 0
        assert len(cache) == 1

    def test_empty_list_is_a_valid_cached_value(self):
        cache = IntersectionCache(maxsize=8)
        cache.put("key", [])
        got = cache.get("key")
        assert got == [] and got is not None
        assert cache.hits == 1 and cache.misses == 0

    def test_eviction_respects_bound(self):
        cache = IntersectionCache(maxsize=4)
        for i in range(10):
            cache.put(i, [i])
        assert len(cache) == 4
        assert cache.evictions == 6
        # Oldest insertions are gone, newest survive.
        assert cache.get(0) is None
        assert cache.get(9) == [9]

    def test_overwrite_does_not_evict(self):
        cache = IntersectionCache(maxsize=2)
        cache.put("a", [1])
        cache.put("b", [2])
        cache.put("a", [1, 1])
        assert cache.evictions == 0
        assert cache.get("a") == [1, 1]
        assert cache.get("b") == [2]

    def test_zero_maxsize_disables_storage(self):
        cache = IntersectionCache(maxsize=0)
        cache.put("k", [1])
        assert len(cache) == 0
        assert cache.get("k") is None
        assert cache.misses == 1 and cache.evictions == 0

    def test_stats_mirroring(self):
        stats = MatchStats()
        cache = IntersectionCache(maxsize=1, stats=stats)
        cache.get("a")          # miss
        cache.put("a", [1])
        cache.get("a")          # hit
        cache.put("b", [2])     # evicts "a"
        assert (stats.cache_hits, stats.cache_misses,
                stats.cache_evictions) == (1, 1, 1)
        assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 1)

    def test_clear_keeps_counters(self):
        cache = IntersectionCache(maxsize=4)
        cache.put("a", [1])
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.hits == 1 and cache.misses == 1

    def test_default_size_constant(self):
        assert IntersectionCache().maxsize == DEFAULT_CACHE_SIZE
