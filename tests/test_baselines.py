"""Tests for every baseline matcher: correctness against CECI and the
algorithm-specific behaviors each reimplementation must exhibit."""

import pytest

from repro import CECIMatcher, Graph, match
from repro.baselines import (
    BareMatcher,
    CFLMatcher,
    DualSimMatcher,
    PageStore,
    PsgLMatcher,
    QuickSIMatcher,
    TurboIsoMatcher,
    UllmannMatcher,
    VF2Matcher,
    bare_match,
    boosted_turboiso_match,
    cflmatch_match,
    core_forest_leaf,
    data_vertex_classes,
    dualsim_match,
    psgl_match,
    quicksi_match,
    turboiso_match,
    ullmann_match,
    vf2_match,
)
from repro.graph import inject_labels, power_law

from conftest import brute_force_embeddings, random_labeled_instance

ALL_MATCH_FNS = {
    "ullmann": ullmann_match,
    "vf2": vf2_match,
    "quicksi": quicksi_match,
    "turboiso": turboiso_match,
    "boosted": boosted_turboiso_match,
    "cflmatch": cflmatch_match,
    "psgl": psgl_match,
    "dualsim": dualsim_match,
    "bare": bare_match,
}


@pytest.mark.parametrize("name", sorted(ALL_MATCH_FNS))
class TestAgainstBruteForce:
    def test_paper_example(self, name, paper_query, paper_data):
        fn = ALL_MATCH_FNS[name]
        assert set(fn(paper_query, paper_data)) == {
            (1, 3, 4, 11, 12),
            (1, 5, 6, 13, 14),
        }

    def test_random_instances(self, name):
        fn = ALL_MATCH_FNS[name]
        checked = 0
        for seed in range(40):
            instance = random_labeled_instance(seed)
            if instance is None:
                continue
            query, data = instance
            expected = brute_force_embeddings(query, data)
            got = set(fn(query, data, break_automorphisms=False))
            assert got == expected, f"{name} differs on seed {seed}"
            checked += 1
        assert checked >= 20

    def test_limit_semantics(self, name, triangle):
        fn = ALL_MATCH_FNS[name]
        data = power_law(120, 4, seed=23)
        total = len(fn(triangle, data))
        limited = fn(triangle, data, limit=5)
        assert len(limited) == min(5, total)

    def test_automorphism_breaking(self, name, triangle):
        fn = ALL_MATCH_FNS[name]
        data = power_law(60, 4, seed=29)
        broken = fn(triangle, data)
        full = fn(triangle, data, break_automorphisms=False)
        assert len(full) == 6 * len(broken)


class TestUllmann:
    def test_refinement_prunes(self):
        data = Graph(4, [(0, 1), (1, 2), (2, 3)], labels=["A", "B", "A", "B"])
        query = Graph(3, [(0, 1), (1, 2)], labels=["A", "B", "A"])
        matcher = UllmannMatcher(query, data)
        candidates = matcher._initial_matrix()
        assert matcher._refine(candidates)
        # data vertex 0 (degree-1 'A') can match the path ends only
        assert candidates[1] == {1}  # middle 'B' with two 'A' neighbors

    def test_refinement_detects_dead_instance(self):
        data = Graph(2, [(0, 1)], labels=["A", "B"])
        query = Graph(3, [(0, 1), (1, 2)], labels=["A", "B", "A"])
        matcher = UllmannMatcher(query, data)
        candidates = matcher._initial_matrix()
        assert not matcher._refine(candidates)


class TestVF2:
    def test_connected_order(self, paper_query):
        matcher = VF2Matcher(paper_query, paper_query)
        order = matcher._order
        placed = {order[0]}
        for u in order[1:]:
            assert any(w in placed for w in paper_query.neighbors(u))
            placed.add(u)

    def test_disconnected_query_rejected(self):
        with pytest.raises(ValueError):
            VF2Matcher(Graph(3, [(0, 1)]), Graph(3, [(0, 1)]))


class TestQuickSI:
    def test_qi_sequence_tree_plus_extra_edges(self, paper_query):
        matcher = QuickSIMatcher(paper_query, paper_query)
        order, parent, extra = (
            matcher._order,
            matcher._tree_parent,
            matcher._extra_edges,
        )
        tree_edges = sum(1 for u in order if parent[u] >= 0)
        extra_edges = sum(len(e) for e in extra)
        assert tree_edges + extra_edges == paper_query.num_edges

    def test_infrequent_label_starts(self):
        data = Graph(
            5, [(0, 1), (0, 2), (0, 3), (0, 4)], labels=["R", "B", "B", "B", "B"]
        )
        query = Graph(2, [(0, 1)], labels=["R", "B"])
        matcher = QuickSIMatcher(query, data)
        assert matcher._order[0] == 0  # 'R' is rarer than 'B'


class TestTurboIso:
    def test_boosted_equals_plain(self):
        data = inject_labels(power_law(100, 3, seed=31), 2, seed=31)
        query = Graph(3, [(0, 1), (1, 2)], labels=[0, 1, 0])
        assert sorted(turboiso_match(query, data)) == sorted(
            boosted_turboiso_match(query, data)
        )

    def test_data_vertex_classes_partition(self):
        data = power_law(80, 3, seed=37)
        classes = data_vertex_classes(data)
        members = sorted(v for group in classes for v in group)
        assert members == list(range(80))

    def test_twins_grouped(self):
        # 0, 1, 3 are mutually adjacent twins (closed neighborhood
        # {0,1,2,3} each); 4 and 5 are open twins (both only see 2).
        g = Graph(
            6,
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (2, 4), (2, 5)],
        )
        classes = {tuple(c) for c in data_vertex_classes(g)}
        assert (0, 1, 3) in classes
        assert (4, 5) in classes


class TestCFLMatch:
    def test_core_forest_leaf_on_house(self):
        house = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)])
        core, forest, leaves = core_forest_leaf(house)
        assert core == {0, 1, 2, 3, 4}
        assert forest == set() and leaves == set()

    def test_core_forest_leaf_on_tadpole(self):
        # triangle 0-1-2 with path 2-3-4
        g = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        core, forest, leaves = core_forest_leaf(g)
        assert core == {0, 1, 2}
        assert leaves == {4}
        assert forest == {3}

    def test_acyclic_query_all_forest_and_leaves(self):
        path = Graph(4, [(0, 1), (1, 2), (2, 3)])
        core, forest, leaves = core_forest_leaf(path)
        assert core == set()
        assert leaves == {0, 3}
        assert forest == {1, 2}

    def test_uses_edge_verification(self, paper_query, paper_data):
        matcher = CFLMatcher(paper_query, paper_data)
        matcher.match()
        assert matcher.stats.edge_verifications > 0
        assert matcher.stats.intersections == 0

    def test_adjacency_matrix_bytes(self, paper_query, paper_data):
        matcher = CFLMatcher(paper_query, paper_data)
        n = paper_data.num_vertices
        assert matcher.adjacency_matrix_bytes() == n * n // 8


class TestPsgL:
    def test_peak_intermediate_recorded(self, triangle):
        data = power_law(100, 4, seed=41)
        matcher = PsgLMatcher(triangle, data)
        matcher.match()
        assert matcher.peak_intermediate > 0
        assert len(matcher.level_work) == triangle.num_vertices - 1

    def test_parallel_model_improves_with_workers(self, triangle):
        data = power_law(200, 4, seed=43)
        matcher = PsgLMatcher(triangle, data)
        matcher.match()
        t1 = matcher.simulate_parallel(1)
        t8 = matcher.simulate_parallel(8)
        assert t8 < t1

    def test_parallel_model_requires_profile(self, triangle):
        matcher = PsgLMatcher(triangle, power_law(50, 3, seed=1))
        with pytest.raises(RuntimeError):
            matcher.simulate_parallel(4)

    def test_routing_overhead_caps_scaling(self, triangle):
        data = power_law(200, 4, seed=43)
        matcher = PsgLMatcher(triangle, data)
        matcher.match()
        t64 = matcher.simulate_parallel(64)
        t1024 = matcher.simulate_parallel(1024)
        # per-embedding routing is serial: huge worker counts stop helping
        assert t1024 > 0.5 * t64


class TestDualSim:
    def test_page_store_counts_loads(self):
        g = power_law(64, 3, seed=47)
        store = PageStore(g, vertices_per_page=8, buffer_pages=2)
        store.neighbors(0)
        store.neighbors(1)  # same page: hit
        store.neighbors(63)  # different page: load
        assert store.page_loads == 2
        assert store.page_hits == 1

    def test_lru_eviction(self):
        g = power_law(64, 3, seed=47)
        store = PageStore(g, vertices_per_page=8, buffer_pages=1)
        store.neighbors(0)
        store.neighbors(63)
        store.neighbors(0)  # evicted, reloads
        assert store.page_loads == 3

    def test_bad_geometry_rejected(self):
        g = power_law(10, 3, seed=1)
        with pytest.raises(ValueError):
            PageStore(g, vertices_per_page=0)

    def test_modeled_runtime_dominated_by_io(self, triangle):
        data = power_law(150, 4, seed=53)
        matcher = DualSimMatcher(triangle, data, buffer_pages=2)
        matcher.match()
        assert matcher.store.page_loads > 0
        modeled = matcher.modeled_runtime(io_cost_ratio=1000.0)
        compute_only = matcher.modeled_runtime(io_cost_ratio=0.0)
        assert modeled > 10 * compute_only


class TestBare:
    def test_pivot_partitioning_covers_everything(self, triangle):
        data = power_law(100, 4, seed=59)
        matcher = BareMatcher(triangle, data)
        sequential = set(matcher.match())
        union = set()
        fresh = BareMatcher(triangle, data)
        for pivot in fresh.pivots():
            union.update(fresh.embeddings_from_pivot(pivot))
        assert union == sequential

    def test_does_more_work_than_ceci(self, triangle):
        data = power_law(150, 4, seed=61)
        bare = BareMatcher(triangle, data)
        bare.match()
        ceci = CECIMatcher(triangle, data)
        ceci.match()
        assert bare.stats.recursive_calls >= ceci.stats.recursive_calls
