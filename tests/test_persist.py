"""Tests for CECI index persistence (legacy dict blobs + compact v3)."""

import json

import numpy as np
import pytest

from repro import CECIMatcher, Graph
from repro.core import (
    CompactCECI,
    Enumerator,
    dump_ceci_bytes,
    dump_store_bytes,
    load_ceci,
    load_ceci_bytes,
    load_store_bytes,
    save_ceci,
)
from repro.core.persist import ChecksumError
from repro.graph import inject_labels, power_law


@pytest.fixture(scope="module")
def instance():
    data = inject_labels(
        power_law(200, 5, seed=3, min_edges_per_vertex=1), 3, seed=3
    )
    query = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
                  labels=[0, 1, 0, 2])
    return query, data


class TestRoundTrip:
    def test_bytes_round_trip_preserves_structure(self, instance):
        query, data = instance
        matcher = CECIMatcher(query, data, store="dict")
        ceci = matcher.build()
        loaded = load_ceci_bytes(dump_ceci_bytes(ceci), data)
        assert loaded.pivots == ceci.pivots
        assert loaded.te == ceci.te
        assert loaded.nte == ceci.nte
        assert loaded.cardinality == ceci.cardinality
        assert loaded.tree.order == ceci.tree.order

    def test_loaded_index_enumerates_identically(self, instance):
        query, data = instance
        matcher = CECIMatcher(query, data, store="dict")
        reference = sorted(matcher.match())
        loaded = load_ceci_bytes(dump_ceci_bytes(matcher.build()), data)
        got = sorted(Enumerator(loaded, symmetry=matcher.symmetry).collect())
        assert got == reference

    def test_file_round_trip(self, instance, tmp_path):
        query, data = instance
        matcher = CECIMatcher(query, data)
        ceci = matcher.build()
        path = str(tmp_path / "index.ceci")
        save_ceci(ceci, path)
        loaded = load_ceci(path, data)
        assert list(loaded.pivots) == list(ceci.pivots)

    def test_string_labels_survive(self):
        data = Graph(4, [(0, 1), (1, 2), (2, 3)], labels=["C", "O", "C", "N"])
        query = Graph(2, [(0, 1)], labels=["C", "O"])
        matcher = CECIMatcher(query, data, store="dict")
        loaded = load_ceci_bytes(dump_ceci_bytes(matcher.build()), data)
        assert loaded.tree.query.labels_of(0) == frozenset({"C"})

    def test_bad_magic_rejected(self, instance):
        _, data = instance
        with pytest.raises(ValueError):
            load_ceci_bytes(b"NOTANIDX" + b"\x00" * 64, data)

    def test_loaded_index_is_frozen(self, instance):
        query, data = instance
        matcher = CECIMatcher(query, data, store="dict")
        loaded = load_ceci_bytes(dump_ceci_bytes(matcher.build()), data)
        assert loaded.nte_sets is not None
        assert loaded.te_sets is not None


class TestCompactFormat:
    def test_store_bytes_round_trip_enumerates_identically(self, instance):
        query, data = instance
        matcher = CECIMatcher(query, data)  # store="compact" default
        reference = sorted(matcher.match())
        store = matcher.build()
        assert isinstance(store, CompactCECI)
        loaded = load_store_bytes(dump_store_bytes(store), data)
        got = sorted(Enumerator(loaded, symmetry=matcher.symmetry).collect())
        assert got == reference

    def test_candidate_sets_identical_across_formats(self, instance):
        query, data = instance
        dict_ceci = CECIMatcher(query, data, store="dict").build()
        store = CECIMatcher(query, data, store="compact").build()
        loaded = load_store_bytes(dump_store_bytes(store), data)
        for u in query.vertices():
            assert sorted(int(v) for v in loaded.candidates(u)) == sorted(
                dict_ceci.candidates(u)
            )

    def test_dump_from_dict_builder_freezes(self, instance):
        query, data = instance
        ceci = CECIMatcher(query, data, store="dict").build()
        loaded = load_store_bytes(dump_store_bytes(ceci), data)
        assert isinstance(loaded, CompactCECI)
        assert list(loaded.pivots) == list(ceci.pivots)

    def test_legacy_dump_rejects_compact_store(self, instance):
        query, data = instance
        store = CECIMatcher(query, data).build()
        with pytest.raises(TypeError):
            dump_ceci_bytes(store)

    def test_mmap_load_serves_array_backed_candidates(
        self, instance, tmp_path
    ):
        query, data = instance
        matcher = CECIMatcher(query, data)
        store = matcher.build()
        path = str(tmp_path / "index.ceci")
        save_ceci(store, path)
        loaded = load_ceci(path, data, mmap=True)
        # No dict reconstruction: the index is a CompactCECI and every
        # candidate probe answers with an ndarray (a memmap view for
        # non-empty blocks), never a rebuilt Python list.
        assert isinstance(loaded, CompactCECI)
        assert isinstance(loaded.pivots, np.ndarray)
        mapped = 0
        for u in query.vertices():
            keys, _, values = loaded.te[u]
            assert isinstance(keys, np.ndarray)
            assert isinstance(values, np.ndarray)
            mapped += sum(
                1 for arr in (keys, values) if isinstance(arr, np.memmap)
            )
            for v_p in keys:
                assert isinstance(loaded.te_values(u, int(v_p)), np.ndarray)
        assert mapped > 0  # at least one block really is file-backed
        reference = sorted(matcher.match())
        got = sorted(Enumerator(loaded, symmetry=matcher.symmetry).collect())
        assert got == reference

    def test_checksums_survive_the_mmap_round_trip(self, instance, tmp_path):
        query, data = instance
        store = CECIMatcher(query, data).build()
        path = str(tmp_path / "index.ceci")
        save_ceci(store, path)
        loaded = load_ceci(path, data, mmap=True)
        assert loaded.checksum_verified is True

    def test_te_only_cpi_shape_round_trips(self, instance, tmp_path):
        # CPI-style index: TE candidates only, nte_built=False.
        from repro.baselines.cflmatch import CFLMatcher

        query, data = instance
        matcher = CFLMatcher(query, data)  # store="compact" default
        reference = sorted(matcher.match())
        cpi = matcher._build().ceci
        assert isinstance(cpi, CompactCECI)
        assert not cpi.nte_built
        path = str(tmp_path / "cpi.ceci")
        save_ceci(cpi, path)
        loaded = load_ceci(path, data)
        assert isinstance(loaded, CompactCECI)
        assert not loaded.nte_built
        for u in query.vertices():
            assert loaded.nte[u] == {}
            assert np.array_equal(loaded.te[u][0], cpi.te[u][0])
            assert np.array_equal(loaded.te[u][2], cpi.te[u][2])


# ----------------------------------------------------------------------
# Block checksums (CECIIDX3 minor version 3.1)
# ----------------------------------------------------------------------

def _split_v3(blob: bytes):
    """(header dict, offset of the first array block) of a v3 blob."""
    assert blob[:8] == b"CECIIDX3"
    size = int.from_bytes(blob[8:16], "little")
    header = json.loads(blob[16:16 + size].decode("utf-8"))
    return header, 16 + size


def _strip_checksums(blob: bytes) -> bytes:
    """Rewrite a v3 blob as a pre-3.1 file: same array blocks, header
    without the checksum table."""
    header, body_at = _split_v3(blob)
    for key in ("checksum", "block_bytes", "block_crc32"):
        header.pop(key, None)
    payload = json.dumps(header).encode("utf-8")
    return (
        blob[:8]
        + len(payload).to_bytes(8, "little")
        + payload
        + blob[body_at:]
    )


def _flip(blob: bytes, pos: int) -> bytes:
    return blob[:pos] + bytes([blob[pos] ^ 0xFF]) + blob[pos + 1:]


class TestChecksums:
    @pytest.fixture(scope="class")
    def blob(self, instance):
        query, data = instance
        store = CECIMatcher(query, data).build()
        assert isinstance(store, CompactCECI)
        return dump_store_bytes(store)

    def test_header_carries_a_complete_crc_table(self, blob):
        header, body_at = _split_v3(blob)
        assert header["checksum"] == "crc32"
        assert len(header["block_bytes"]) == len(header["block_crc32"])
        # The recorded lengths tile the payload exactly: every byte of
        # every block is covered by some CRC.
        assert sum(header["block_bytes"]) == len(blob) - body_at

    def test_round_trip_marks_checksum_verified(self, blob, instance):
        _, data = instance
        loaded = load_store_bytes(blob, data)
        assert loaded.checksum_verified is True

    def test_any_payload_bit_flip_is_detected(self, blob, instance):
        """Sweep corruptions across the whole array payload — npy
        headers and data alike — and every one must surface as a
        ChecksumError, never as garbage candidates or a numpy parse
        crash."""
        _, data = instance
        _, body_at = _split_v3(blob)
        positions = list(range(body_at, len(blob), 131)) + [len(blob) - 1]
        assert positions
        for pos in positions:
            with pytest.raises(ChecksumError):
                load_store_bytes(_flip(blob, pos), data)

    def test_truncated_blob_is_detected(self, blob, instance):
        _, data = instance
        with pytest.raises(ChecksumError):
            load_store_bytes(blob[:-7], data)

    def test_corrupt_file_is_never_memmapped(self, instance, tmp_path):
        query, data = instance
        store = CECIMatcher(query, data).build()
        path = tmp_path / "index.ceci"
        save_ceci(store, str(path))
        raw = path.read_bytes()
        _, body_at = _split_v3(raw)
        path.write_bytes(_flip(raw, (body_at + len(raw)) // 2))
        with pytest.raises(ChecksumError):
            load_ceci(str(path), data, mmap=True)

    def test_legacy_no_checksum_blob_still_loads(self, blob, instance):
        query, data = instance
        legacy = _strip_checksums(blob)
        loaded = load_store_bytes(legacy, data)
        assert isinstance(loaded, CompactCECI)
        assert loaded.checksum_verified is False
        reference = load_store_bytes(blob, data)
        assert np.array_equal(loaded.pivots, reference.pivots)
        for u in query.vertices():
            assert np.array_equal(loaded.te[u][2], reference.te[u][2])

    def test_verify_false_skips_the_check(self, blob, instance):
        """Opt-out path: with ``verify=False`` a data-region flip loads
        (the caller accepted the risk) and the store says so."""
        _, data = instance
        corrupted = _flip(blob, len(blob) - 5)  # inside the last block's
        # data region, clear of any npy header
        loaded = load_store_bytes(corrupted, data, verify=False)
        assert isinstance(loaded, CompactCECI)
        assert loaded.checksum_verified is False
