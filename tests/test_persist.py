"""Tests for CECI index persistence."""

import pytest

from repro import CECIMatcher, Graph
from repro.core import Enumerator, dump_ceci_bytes, load_ceci, load_ceci_bytes, save_ceci
from repro.graph import inject_labels, power_law


@pytest.fixture(scope="module")
def instance():
    data = inject_labels(
        power_law(200, 5, seed=3, min_edges_per_vertex=1), 3, seed=3
    )
    query = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
                  labels=[0, 1, 0, 2])
    return query, data


class TestRoundTrip:
    def test_bytes_round_trip_preserves_structure(self, instance):
        query, data = instance
        matcher = CECIMatcher(query, data)
        ceci = matcher.build()
        loaded = load_ceci_bytes(dump_ceci_bytes(ceci), data)
        assert loaded.pivots == ceci.pivots
        assert loaded.te == ceci.te
        assert loaded.nte == ceci.nte
        assert loaded.cardinality == ceci.cardinality
        assert loaded.tree.order == ceci.tree.order

    def test_loaded_index_enumerates_identically(self, instance):
        query, data = instance
        matcher = CECIMatcher(query, data)
        reference = sorted(matcher.match())
        loaded = load_ceci_bytes(dump_ceci_bytes(matcher.build()), data)
        got = sorted(Enumerator(loaded, symmetry=matcher.symmetry).collect())
        assert got == reference

    def test_file_round_trip(self, instance, tmp_path):
        query, data = instance
        matcher = CECIMatcher(query, data)
        ceci = matcher.build()
        path = str(tmp_path / "index.ceci")
        save_ceci(ceci, path)
        loaded = load_ceci(path, data)
        assert loaded.pivots == ceci.pivots

    def test_string_labels_survive(self):
        data = Graph(4, [(0, 1), (1, 2), (2, 3)], labels=["C", "O", "C", "N"])
        query = Graph(2, [(0, 1)], labels=["C", "O"])
        matcher = CECIMatcher(query, data)
        loaded = load_ceci_bytes(dump_ceci_bytes(matcher.build()), data)
        assert loaded.tree.query.labels_of(0) == frozenset({"C"})

    def test_bad_magic_rejected(self, instance):
        _, data = instance
        with pytest.raises(ValueError):
            load_ceci_bytes(b"NOTANIDX" + b"\x00" * 64, data)

    def test_loaded_index_is_frozen(self, instance):
        query, data = instance
        matcher = CECIMatcher(query, data)
        loaded = load_ceci_bytes(dump_ceci_bytes(matcher.build()), data)
        assert loaded.nte_sets is not None
        assert loaded.te_sets is not None
