"""Tests for root selection and automorphism breaking."""

import pytest

from repro.graph import Graph
from repro.core import (
    MatchStats,
    SymmetryBreaker,
    automorphisms,
    equivalence_groups,
    gk_conditions,
    initial_candidates,
    select_root,
)


class TestInitialCandidates:
    def test_label_filter(self):
        data = Graph(3, [(0, 1), (1, 2)], labels=["A", "B", "A"])
        query = Graph(2, [(0, 1)], labels=["A", "B"])
        assert set(initial_candidates(query, data, 0)) == {0, 2}

    def test_degree_filter(self):
        data = Graph(4, [(0, 1), (0, 2), (0, 3)])
        query = Graph(3, [(0, 1), (0, 2)])
        # query vertex 0 has degree 2 -> only the hub qualifies
        assert initial_candidates(query, data, 0) == [0]

    def test_nlc_filter(self):
        # both data vertices have degree 2, but only one sees labels {B, C}
        data = Graph(
            5, [(0, 1), (0, 2), (3, 1), (3, 4)], labels=["A", "B", "C", "A", "B"]
        )
        query = Graph(3, [(0, 1), (0, 2)], labels=["A", "B", "C"])
        assert initial_candidates(query, data, 0) == [0]

    def test_filters_can_be_disabled(self):
        data = Graph(4, [(0, 1), (0, 2), (0, 3)])
        query = Graph(3, [(0, 1), (0, 2)])
        relaxed = initial_candidates(
            query, data, 0, use_degree_filter=False, use_nlc_filter=False
        )
        assert set(relaxed) == {0, 1, 2, 3}

    def test_stats_populated(self):
        data = Graph(3, [(0, 1), (1, 2)], labels=["A", "B", "A"])
        query = Graph(2, [(0, 1)], labels=["A", "B"])
        stats = MatchStats()
        initial_candidates(query, data, 0, stats)
        assert stats.candidates_initial > 0


class TestSelectRoot:
    def test_figure1_root_is_u1(self, paper_query, paper_data):
        root, pivots = select_root(paper_query, paper_data)
        assert root == 0  # u1: cost 1 is the minimum (Section 2.2)
        assert set(pivots) == {1, 2}  # pivots v1 and v2

    def test_min_cost_rule(self):
        # label A appears once, label B three times; both have degree 1
        data = Graph(4, [(0, 1), (0, 2), (0, 3)], labels=["A", "B", "B", "B"])
        query = Graph(2, [(0, 1)], labels=["A", "B"])
        root, pivots = select_root(query, data)
        assert root == 0
        assert pivots == [0]

    def test_unsatisfiable_vertex_short_circuits(self):
        data = Graph(2, [(0, 1)], labels=["A", "B"])
        query = Graph(2, [(0, 1)], labels=["A", "Z"])
        root, pivots = select_root(query, data)
        assert pivots == []


class TestEquivalenceGroups:
    def test_triangle_single_group(self, triangle):
        groups = equivalence_groups(triangle)
        assert groups == [(0, 1, 2)]

    def test_labels_split_groups(self):
        labeled_triangle = Graph(3, [(0, 1), (1, 2), (0, 2)], labels=["A", "A", "B"])
        assert equivalence_groups(labeled_triangle) == [(0, 1)]

    def test_star_tips_equivalent(self):
        star = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert equivalence_groups(star) == [(1, 2, 3)]

    def test_path_has_end_symmetry(self):
        path = Graph(3, [(0, 1), (1, 2)])
        assert equivalence_groups(path) == [(0, 2)]

    def test_asymmetric_query_no_groups(self):
        # a triangle with a tail: only the two non-tail triangle vertices
        tailed = Graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        assert equivalence_groups(tailed) == [(0, 1)]


class TestAutomorphisms:
    def test_triangle_group_size(self, triangle):
        assert len(automorphisms(triangle)) == 6

    def test_square_group_size(self):
        square = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert len(automorphisms(square)) == 8  # dihedral D4

    def test_house_reflection_only(self):
        house = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)])
        auts = automorphisms(house)
        assert len(auts) == 2
        assert (1, 0, 3, 2, 4) in auts  # the reflection

    def test_labels_restrict_group(self):
        labeled = Graph(3, [(0, 1), (1, 2), (0, 2)], labels=["A", "A", "B"])
        assert len(automorphisms(labeled)) == 2

    def test_path_end_swap(self):
        path = Graph(3, [(0, 1), (1, 2)])
        assert set(automorphisms(path)) == {(0, 1, 2), (2, 1, 0)}

    def test_identity_always_present(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], labels=["A", "B", "C", "D"])
        assert automorphisms(g) == [(0, 1, 2, 3)]


class TestGKConditions:
    def test_empty_group(self):
        assert gk_conditions([]) == []

    def test_trivial_group_no_conditions(self):
        assert gk_conditions([(0, 1, 2)]) == []

    def test_suppression_factor_matches_group_order(self):
        # For each query the number of embeddings admitted in a complete
        # graph shrinks by exactly |Aut|.
        import itertools

        for edges, n in [
            ([(0, 1), (1, 2), (0, 2)], 3),            # triangle
            ([(0, 1), (1, 2), (2, 3), (3, 0)], 4),     # square
            ([(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)], 5),  # house
        ]:
            query = Graph(n, edges)
            aut = automorphisms(query)
            conditions = gk_conditions(aut)

            def admitted(perm):
                return all(perm[lo] < perm[hi] for lo, hi in conditions)

            total = 0
            kept = 0
            for perm in itertools.permutations(range(n)):
                total += 1
                if admitted(perm):
                    kept += 1
            assert kept * len(aut) == total


class TestSymmetryBreaker:
    def test_triangle_automorphism_count(self, triangle):
        assert SymmetryBreaker(triangle).automorphism_count() == 6

    def test_disabled_breaker_admits_everything(self, triangle):
        breaker = SymmetryBreaker(triangle, enabled=False)
        assert breaker.automorphism_count() == 1
        assert breaker.admissible(1, 0, [5, -1, -1])

    def test_ordering_constraint(self, triangle):
        breaker = SymmetryBreaker(triangle)
        # vertex 0 mapped to 5; vertex 1 must map above 5
        assert breaker.admissible(1, 7, [5, -1, -1])
        assert not breaker.admissible(1, 3, [5, -1, -1])

    def test_reverse_direction_constraint(self, triangle):
        breaker = SymmetryBreaker(triangle)
        # vertex 2 already mapped to 4; vertex 0 must map below 4
        assert breaker.admissible(0, 2, [-1, -1, 4])
        assert not breaker.admissible(0, 9, [-1, -1, 4])

    def test_match_counts_relate_by_automorphism_factor(self, triangle):
        from repro import match
        from repro.graph import power_law

        data = power_law(60, 4, seed=13)
        broken = match(triangle, data)
        full = match(triangle, data, break_automorphisms=False)
        assert len(full) == 6 * len(broken)
        # every unbroken embedding is a permutation of a broken one
        assert {frozenset(e) for e in full} == {frozenset(e) for e in broken}

    def test_each_vertex_set_listed_once(self, triangle):
        from repro import match
        from repro.graph import power_law

        data = power_law(60, 4, seed=13)
        broken = match(triangle, data)
        assert len({frozenset(e) for e in broken}) == len(broken)
