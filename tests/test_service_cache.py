"""Unit tests for the service's two caching layers and fair scheduler.

The regression that motivates half of this file: a single
:class:`~repro.kernels.cache.IntersectionCache` shared across concurrent
requests keys entries on ``(query vertex, parent candidate, NTE
candidates)`` — a key that says nothing about *which query* produced
the entry.  Two different queries over one data graph collide on it and
one query silently enumerates from the other's intersections.  The fix
is :meth:`~repro.kernels.cache.IntersectionCache.view`: every probe and
store is prefixed with a per-request namespace, so entries written for
one query are invisible to every other.  ``test_bare_shared_cache_is_
unsound`` pins the failure mode itself (so the test fails loudly if the
instance stops reproducing it) and ``test_namespaced_views_restore_
correctness`` pins the fix.

The rest covers the :class:`~repro.service.cache.IndexCache` tiers
(hit / warm spill revival / coalesced in-flight builds / miss), store
transplantation onto relabeled isomorphic queries, and the weighted
fair interleaving the batch scheduler runs on.
"""

from __future__ import annotations

import threading
import time
from typing import List, Set, Tuple

import pytest

from conftest import brute_force_embeddings
from repro.core.automorphism import SymmetryBreaker, canonical_form
from repro.core.enumeration import Enumerator
from repro.core.matcher import CECIMatcher
from repro.core.store import CompactCECI
from repro.graph import Graph, inject_labels
from repro.graph.generators import power_law
from repro.kernels import IntersectionCache
from repro.service import (
    CacheEntry,
    FairTaskQueue,
    IndexCache,
    MatchRequest,
    MatchService,
    fair_interleave,
    transplant_store,
)

# ----------------------------------------------------------------------
# The cross-query intersection-cache regression
# ----------------------------------------------------------------------

#: K4 whose vertices 0,1 carry both labels, so they are candidates for
#: *both* triangle queries below — the bare cache key ``(u, v_p, nte)``
#: then collides across the queries while the correct TE∩NTE results
#: differ (vertex 2 only matches "x", vertex 3 only "y").
POISON_DATA = Graph(
    4,
    [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
    labels={0: {"x", "y"}, 1: {"x", "y"}, 2: {"x"}, 3: {"y"}},
)
TRIANGLE_X = Graph(3, [(0, 1), (1, 2), (0, 2)], labels=["x", "x", "x"])
TRIANGLE_Y = Graph(3, [(0, 1), (1, 2), (0, 2)], labels=["y", "y", "y"])


def _enumerate_with(query: Graph, data: Graph, cache) -> Set[Tuple]:
    """Full embedding set from a fresh index but an *injected* memo
    cache — exactly how the service wires shared pools into workers.

    Pinned to the recursive engine: the memo cache (and therefore the
    key-collision bug this file regresses) lives on the recursive
    TE∩NTE path — the batch engine never consults it."""
    store = CECIMatcher(query, data, break_automorphisms=False).build()
    enumerator = Enumerator(
        store,
        symmetry=SymmetryBreaker(query, enabled=False),
        use_intersection=True,
        cache=cache,
        engine="recursive",
    )
    return {tuple(int(v) for v in e) for e in enumerator.collect()}


def test_bare_shared_cache_is_unsound():
    """Sharing one cache *without* namespacing must reproduce the bug:
    the second query reads the first's entries and emits embeddings
    that violate its own labels.  If this ever stops failing, the
    instance no longer exercises the collision and must be replaced."""
    expected = brute_force_embeddings(TRIANGLE_Y, POISON_DATA)
    shared = IntersectionCache(threadsafe=True)
    first = _enumerate_with(TRIANGLE_X, POISON_DATA, shared)
    assert first == brute_force_embeddings(TRIANGLE_X, POISON_DATA)
    second = _enumerate_with(TRIANGLE_Y, POISON_DATA, shared)
    assert second != expected, (
        "bare key collision no longer reproduces — the regression "
        "instance has gone stale"
    )
    # The poison is specifically a label violation: vertex 2 has no "y".
    assert any(2 in embedding for embedding in second)


def test_namespaced_views_restore_correctness():
    """The fix: per-query views over one shared pool never leak."""
    pool = IntersectionCache(threadsafe=True)
    first = _enumerate_with(
        TRIANGLE_X, POISON_DATA, pool.view(("data", "qx"))
    )
    second = _enumerate_with(
        TRIANGLE_Y, POISON_DATA, pool.view(("data", "qy"))
    )
    assert first == brute_force_embeddings(TRIANGLE_X, POISON_DATA)
    assert second == brute_force_embeddings(TRIANGLE_Y, POISON_DATA)
    # Both queries really did share the one bounded pool.
    assert pool.hits > 0 or len(pool) > 0


def test_view_keys_are_disjoint():
    pool = IntersectionCache(threadsafe=True)
    a = pool.view("ns-a")
    b = pool.view("ns-b")
    a.put((2, 0, 1), [7, 8])
    assert a.get((2, 0, 1)) == [7, 8]
    assert b.get((2, 0, 1)) is None
    assert pool.get((2, 0, 1)) is None  # bare key never stored


def test_service_survives_the_poison_pair():
    """End-to-end: the service runs both colliding queries through its
    shared pool (namespaced internally) and both answers stay exact."""
    with MatchService(POISON_DATA, workers=2) as service:
        for query in (TRIANGLE_X, TRIANGLE_Y, TRIANGLE_X, TRIANGLE_Y):
            response = service.match(
                MatchRequest(query, break_automorphisms=False)
            )
            assert response.ok
            got = {tuple(int(v) for v in e) for e in response.embeddings}
            assert got == brute_force_embeddings(query, POISON_DATA)
        assert service.intersection_pool is not None


# ----------------------------------------------------------------------
# IndexCache tiers
# ----------------------------------------------------------------------

def _instance() -> Tuple[Graph, Graph]:
    data = inject_labels(power_law(80, 3, seed=3), 2, seed=3)
    query = Graph(3, [(0, 1), (1, 2), (0, 2)])
    query = data.subgraph(_triangle_vertices(data))
    return query, data


def _triangle_vertices(data: Graph) -> List[int]:
    for s, d in data.edges:
        common = set(data.neighbors(s)) & set(data.neighbors(d))
        if common:
            return sorted([s, d, common.pop()])
    raise AssertionError("generator produced a triangle-free graph")


def _builder(query: Graph, data: Graph):
    def build() -> CompactCECI:
        store = CECIMatcher(query, data, break_automorphisms=False).build()
        assert isinstance(store, CompactCECI)
        return store

    return build


def _embeddings_from(store: CompactCECI, query: Graph) -> List[Tuple]:
    enumerator = Enumerator(
        store, symmetry=SymmetryBreaker(query, enabled=False)
    )
    return enumerator.collect()


def test_index_cache_miss_then_hit():
    query, data = _instance()
    cache = IndexCache(data, capacity=4)
    entry, tag, order = cache.get_or_build(query, _builder(query, data))
    assert tag == "miss" and cache.misses == 1
    again, tag2, order2 = cache.get_or_build(query, _builder(query, data))
    assert tag2 == "hit" and again is entry and order2 == order
    # Identical labeling -> adapt returns the very same store object.
    assert cache.adapt(again, query, order2) is entry.store
    snap = cache.snapshot()
    assert snap["hits"] == 1 and snap["misses"] == 1
    assert snap["hit_rate"] == 0.5


def test_index_cache_eviction_spills_and_revives(tmp_path):
    query, data = _instance()
    other = data.subgraph(sorted(data.neighbors(0))[:1] + [0])  # an edge
    cache = IndexCache(data, capacity=1, spill_dir=str(tmp_path))
    entry, _, order = cache.get_or_build(query, _builder(query, data))
    reference = _embeddings_from(entry.store, query)
    cache.get_or_build(other, _builder(other, data))  # evicts the triangle
    assert cache.evictions == 1 and cache.spills == 1
    revived, tag, order2 = cache.get_or_build(query, _builder(query, data))
    assert tag == "warm" and cache.warm_hits == 1
    store = cache.adapt(revived, query, order2)
    assert store is not None
    assert _embeddings_from(store, query) == reference


def test_index_cache_without_spill_dir_rebuilds():
    query, data = _instance()
    other = data.subgraph(sorted(data.neighbors(0))[:1] + [0])
    cache = IndexCache(data, capacity=1)
    cache.get_or_build(query, _builder(query, data))
    cache.get_or_build(other, _builder(other, data))
    _, tag, _ = cache.get_or_build(query, _builder(query, data))
    assert tag == "miss" and cache.misses == 3 and cache.spills == 0


def test_index_cache_coalesces_concurrent_builds():
    """N threads race one cold key: exactly one build happens, the rest
    wait on the in-flight event and report ``coalesced`` (or ``hit`` if
    they arrive after insertion)."""
    query, data = _instance()
    builds = []

    def slow_build() -> CompactCECI:
        time.sleep(0.05)
        builds.append(1)
        return _builder(query, data)()

    cache = IndexCache(data, capacity=4)
    tags: List[str] = []
    barrier = threading.Barrier(4)

    def probe() -> None:
        barrier.wait()
        _, tag, _ = cache.get_or_build(query, slow_build)
        tags.append(tag)

    threads = [threading.Thread(target=probe) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(builds) == 1
    assert sorted(tags).count("miss") == 1
    assert set(tags) <= {"miss", "coalesced", "hit"}
    assert cache.coalesced + cache.hits == 3


def test_index_cache_failed_build_releases_waiters():
    query, data = _instance()
    cache = IndexCache(data, capacity=4)

    def broken() -> CompactCECI:
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        cache.get_or_build(query, broken)
    # The in-flight slot was released: the next caller becomes the
    # builder instead of deadlocking on a dead event.
    _, tag, _ = cache.get_or_build(query, _builder(query, data))
    assert tag == "miss"


def test_index_cache_rejects_bad_capacity():
    _, data = _instance()
    with pytest.raises(ValueError):
        IndexCache(data, capacity=0)


def _wedge_vertices(data: Graph) -> List[int]:
    """Three vertices inducing a path (a wedge) — non-isomorphic to both
    the triangle and the single edge used by the other spill tests."""
    for u in data.vertices():
        neighbors = sorted(data.neighbors(u))
        for i, a in enumerate(neighbors):
            for b in neighbors[i + 1:]:
                if not data.has_edge(a, b):
                    return sorted([a, u, b])
    raise AssertionError("generator produced no induced wedge")


def test_corrupt_spill_file_quarantined_then_rebuilt(tmp_path):
    """Real on-disk rot: a byte of the spilled CECIIDX3 blob flips while
    it sits in the spill dir.  Revival must detect it via the block
    checksums, rename the blob ``*.corrupt`` and fall back to a fresh
    build — never serve the rotten arrays."""
    query, data = _instance()
    other = data.subgraph(sorted(data.neighbors(0))[:1] + [0])
    cache = IndexCache(data, capacity=1, spill_dir=str(tmp_path))
    entry, _, order = cache.get_or_build(query, _builder(query, data))
    reference = _embeddings_from(entry.store, query)
    cache.get_or_build(other, _builder(other, data))  # spills the triangle
    spilled = list(tmp_path.glob("*.ceci"))
    assert len(spilled) == 1
    raw = spilled[0].read_bytes()
    pos = len(raw) - 5  # inside the last array block
    spilled[0].write_bytes(raw[:pos] + bytes([raw[pos] ^ 0x40]) + raw[pos + 1:])
    revived, tag, order2 = cache.get_or_build(query, _builder(query, data))
    assert tag == "miss"  # quarantined, not warm-revived
    snap = cache.snapshot()
    assert snap["spill_corrupt"] == 1
    assert len(list(tmp_path.glob("*.corrupt"))) == 1
    store = cache.adapt(revived, query, order2)
    assert store is not None
    assert _embeddings_from(store, query) == reference


def test_spill_dir_byte_bound_evicts_oldest(tmp_path):
    """``spill_max_bytes`` keeps the spill dir bounded: when a new spill
    pushes the directory over the bound, least-recently-used blobs are
    deleted (the just-written blob always survives)."""
    query, data = _instance()
    edge = data.subgraph(sorted(data.neighbors(0))[:1] + [0])
    wedge = data.subgraph(_wedge_vertices(data))
    cache = IndexCache(
        data, capacity=1, spill_dir=str(tmp_path), spill_max_bytes=1
    )
    cache.get_or_build(query, _builder(query, data))
    cache.get_or_build(edge, _builder(edge, data))  # spills the triangle
    first_spill = list(tmp_path.glob("*.ceci"))
    assert len(first_spill) == 1
    cache.get_or_build(wedge, _builder(wedge, data))  # spills the edge
    snap = cache.snapshot()
    assert snap["spill_evicted"] == 1
    assert snap["spill_files"] == 1  # the triangle blob was deleted
    assert not first_spill[0].exists()
    # The deleted blob is gone for good: the triangle now rebuilds cold.
    _, tag, _ = cache.get_or_build(query, _builder(query, data))
    assert tag == "miss"


def test_spill_bound_rejects_nonpositive():
    _, data = _instance()
    with pytest.raises(ValueError):
        IndexCache(data, capacity=1, spill_max_bytes=0)


# ----------------------------------------------------------------------
# Transplanting onto relabeled isomorphic queries
# ----------------------------------------------------------------------

def _permuted(query: Graph, perm: List[int]) -> Graph:
    """The same labeled graph with vertex ``u`` renamed ``perm[u]``."""
    edges = [(perm[s], perm[d]) for s, d in query.edges]
    labels = {perm[u]: query.labels_of(u) for u in query.vertices()}
    return Graph(query.num_vertices, edges, labels=labels)


def test_transplant_matches_brute_force():
    query, data = _instance()
    perm = [2, 0, 1]
    relabeled = _permuted(query, perm)
    store = CECIMatcher(query, data, break_automorphisms=False).build()
    assert isinstance(store, CompactCECI)
    moved = transplant_store(store, relabeled, perm)
    got = {
        tuple(int(v) for v in e) for e in _embeddings_from(moved, relabeled)
    }
    assert got == brute_force_embeddings(relabeled, data)


def test_adapt_serves_relabeled_query_from_one_slot():
    query, data = _instance()
    relabeled = _permuted(query, [1, 2, 0])
    cache = IndexCache(data, capacity=4)
    cache.get_or_build(query, _builder(query, data))
    entry, tag, order = cache.get_or_build(
        relabeled, _builder(relabeled, data)
    )
    assert tag == "hit" and len(cache) == 1
    store = cache.adapt(entry, relabeled, order)
    assert store is not None and store is not entry.store
    got = {
        tuple(int(v) for v in e)
        for e in _embeddings_from(store, relabeled)
    }
    assert got == brute_force_embeddings(relabeled, data)


def test_adapt_refuses_non_isomorphic_representative():
    """A forged signature collision must degrade to ``None`` (the
    service then builds privately), never to a wrong store."""
    query, data = _instance()
    store = CECIMatcher(query, data, break_automorphisms=False).build()
    assert isinstance(store, CompactCECI)
    _, canon_order = canonical_form(query)
    entry = CacheEntry(("fp", "sig"), store, canon_order, 0.0)
    impostor = Graph(3, [(0, 1), (1, 2)])  # path, not a triangle
    _, impostor_order = canonical_form(impostor)
    cache = IndexCache(data, capacity=4)
    assert cache.adapt(entry, impostor, impostor_order) is None


# ----------------------------------------------------------------------
# Fair interleaving
# ----------------------------------------------------------------------

def test_fair_interleave_preserves_in_job_order():
    out = fair_interleave([[3.0, 1.0, 2.0], [1.0, 1.0], [5.0]])
    for job in range(3):
        units = [i for j, i in out if j == job]
        assert units == sorted(units)
    assert sorted(out) == [
        (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (2, 0),
    ]


def test_fair_interleave_alternates_equal_jobs():
    out = fair_interleave([[1.0] * 3, [1.0] * 3])
    assert out == [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]


def test_fair_interleave_big_job_cannot_starve_small():
    """A 10-unit job and a 2-unit job: the small job's first unit lands
    at virtual time 0.5 — after five, not ten, of the big job's."""
    out = fair_interleave([[1.0] * 10, [5.0, 5.0]])
    assert out.index((1, 0)) == 5
    assert out.index((1, 1)) == len(out) - 1


def test_fair_task_queue_orders_by_virtual_time():
    queue: FairTaskQueue[str] = FairTaskQueue()
    queue.push_job(["a0", "a1", "a2"], [1.0, 1.0, 1.0])
    queue.push_job(["b0", "b1", "b2"], [1.0, 1.0, 1.0])
    queue.push_solo("solo")
    drained = [queue.pop(timeout=0.1) for _ in range(7)]
    assert drained[0] == "solo"
    assert drained[1:] == ["a0", "b0", "a1", "b1", "a2", "b2"]


def test_fair_task_queue_close_drains_then_signals():
    queue: FairTaskQueue[int] = FairTaskQueue()
    queue.push_solo(1)
    queue.close()
    assert queue.pop() == 1
    assert queue.pop() is None
    with pytest.raises(RuntimeError):
        queue.push_solo(2)


def test_fair_task_queue_mismatched_workloads_rejected():
    queue: FairTaskQueue[int] = FairTaskQueue()
    with pytest.raises(ValueError):
        queue.push_job([1, 2], [1.0])
