"""JSON-lines protocol tests for ``repro serve``'s front end.

Drives :func:`repro.service.server.serve` directly over StringIO
streams — no subprocess — covering request decoding (labels, limits,
budget axes, kernel and id echo), response encoding, the metrics and
shutdown control lines, and the resilience contract: malformed input
yields a ``failed`` line and the loop keeps serving.
"""

from __future__ import annotations

import io
import json
from typing import Dict, List

import pytest

from repro.graph import Graph
from repro.service import MatchService, serve
from repro.service.server import (
    query_from_json,
    request_from_json,
    response_to_json,
)
from repro.service.request import MatchResponse, Status


DATA = Graph(
    5,
    [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
)

TRIANGLE_LINE = {"query": {"n": 3, "edges": [[0, 1], [1, 2], [0, 2]]}}


def _serve_lines(lines: List[Dict], **service_kwargs) -> List[Dict]:
    """Feed request lines through one service; parsed response lines."""
    payload = "\n".join(json.dumps(line) for line in lines) + "\n"
    out = io.StringIO()
    with MatchService(DATA, workers=2, **service_kwargs) as service:
        serve(service, io.StringIO(payload), out)
    return [json.loads(raw) for raw in out.getvalue().splitlines()]


def test_basic_match_roundtrip():
    [response] = _serve_lines([{**TRIANGLE_LINE, "id": 7}])
    assert response["id"] == 7
    assert response["status"] == Status.OK
    assert response["count"] == len(response["embeddings"])
    assert response["cache"] == "miss"
    got = {tuple(e) for e in response["embeddings"]}
    assert got == {(0, 1, 2), (2, 3, 4)}


def test_limit_and_embedding_suppression():
    responses = _serve_lines([
        {**TRIANGLE_LINE, "limit": 1},
        {**TRIANGLE_LINE, "embeddings": False},
    ])
    assert responses[0]["count"] == 1
    assert len(responses[0]["embeddings"]) == 1
    assert responses[1]["count"] == 2
    assert "embeddings" not in responses[1]


def test_budget_line_truncates():
    [response] = _serve_lines([{**TRIANGLE_LINE, "max_embeddings": 1}])
    assert response["status"] == Status.TRUNCATED
    assert response["truncated"] and response["count"] == 1
    assert response["stop_reason"]


def test_malformed_lines_do_not_kill_the_loop():
    payload = "\n".join([
        "this is not json",
        json.dumps({"query": {"n": "three", "edges": []}, "id": 1}),
        json.dumps({"query": {"n": 2, "edges": [[0, 1]],
                              "labels": ["x", "x"]}, "id": 2}),
        json.dumps({**TRIANGLE_LINE, "id": 3}),
    ]) + "\n"
    out = io.StringIO()
    with MatchService(DATA, workers=2) as service:
        handled = serve(service, io.StringIO(payload), out)
    responses = [json.loads(raw) for raw in out.getvalue().splitlines()]
    assert len(responses) == 4
    assert responses[0]["status"] == Status.FAILED  # not JSON
    assert responses[1]["status"] == Status.FAILED  # bad vertex count
    assert responses[1]["id"] == 1
    # Line 3 is well-formed but unsatisfiable (DATA is unlabeled).
    assert responses[2]["status"] == Status.OK
    assert responses[2]["count"] == 0
    assert responses[3]["status"] == Status.OK and responses[3]["count"] == 2
    assert handled == 2  # only decodable match requests are counted


def test_metrics_and_shutdown_control_lines():
    payload = "\n".join([
        json.dumps(TRIANGLE_LINE),
        json.dumps({"cmd": "metrics"}),
        json.dumps({"cmd": "shutdown"}),
        json.dumps(TRIANGLE_LINE),  # after shutdown: never served
    ]) + "\n"
    out = io.StringIO()
    with MatchService(DATA, workers=2) as service:
        handled = serve(service, io.StringIO(payload), out)
    responses = [json.loads(raw) for raw in out.getvalue().splitlines()]
    assert handled == 1
    assert len(responses) == 2
    metrics_line = responses[1]
    assert metrics_line["cmd"] == "metrics"
    assert metrics_line["metrics"]["metrics"]["service_requests_total"] == {
        Status.OK: 1
    }
    assert metrics_line["index_cache"]["misses"] == 1


def test_query_decoding_errors():
    with pytest.raises(ValueError):
        query_from_json([1, 2, 3])
    with pytest.raises(ValueError):
        query_from_json({"edges": []})
    query = query_from_json(
        {"n": 2, "edges": [[0, 1]], "labels": ["a", "b"]}
    )
    assert query.num_vertices == 2 and query.labels_of(1) == {"b"}


def test_request_decoding_budget_axes():
    request = request_from_json({
        "query": {"n": 2, "edges": [[0, 1]]},
        "deadline_seconds": 5.0,
        "max_calls": 10,
        "id": 42,
        "kernel": "merge",
    })
    assert request.request_id == 42 and request.kernel == "merge"
    assert request.budget is not None and request.solo
    plain = request_from_json({"query": {"n": 2, "edges": [[0, 1]]}})
    assert plain.budget is None and not plain.solo


def test_response_encoding_is_json_clean():
    response = MatchResponse(
        request_id=1, status=Status.OK, embeddings=[(0, 1)], cache="hit"
    )
    encoded = response_to_json(response)
    json.dumps(encoded)  # must not raise on any field
    assert encoded["embeddings"] == [[0, 1]]
    assert response_to_json(response, include_embeddings=False).get(
        "embeddings"
    ) is None


def test_phase_seconds_on_the_wire():
    # Clients get the build-vs-enumerate split without server logs.
    [response] = _serve_lines([TRIANGLE_LINE])
    phases = response["phase_seconds"]
    assert isinstance(phases, dict) and phases
    assert all(
        isinstance(v, float) and v >= 0.0 for v in phases.values()
    )
    assert {"filter", "enumerate"} <= set(phases)


def test_op_metrics_is_live_and_folded():
    responses = _serve_lines(
        [TRIANGLE_LINE, {"op": "metrics"}],
        fold_request_stats=True,
    )
    line = responses[1]
    assert line["op"] == "metrics"
    metrics = line["metrics"]["metrics"]
    assert metrics["service_requests_total"] == {Status.OK: 1}
    # The continuous fold carries enumeration counters, and the
    # scrape-time gauges ride along with the snapshot.
    assert metrics["recursive_calls"] > 0
    assert "service_healthy_workers" in metrics
    assert line["scheduler"]["popped"] >= 1
    assert line["index_cache"]["misses"] == 1


def test_op_flight_dump_and_filters():
    from repro.observability import validate_flight_record

    responses = _serve_lines(
        [
            {**TRIANGLE_LINE, "id": 1},
            {**TRIANGLE_LINE, "id": 2},
            {"op": "flight"},
            {"op": "flight", "id": 2},
            {"op": "flight", "limit": 1},
        ],
        flight_records=8,
    )
    full, by_id, limited = responses[2], responses[3], responses[4]
    assert full["op"] == "flight" and full["enabled"] is True
    assert full["count"] == 2
    for record in full["records"]:
        validate_flight_record(record)
        assert record["finished"] is True
        assert record["status"] == Status.OK
    assert by_id["count"] == 1
    assert by_id["records"][0]["request_id"] == 2
    # limit keeps the most recent record.
    assert limited["count"] == 1
    assert limited["records"][0]["request_id"] == 2


def test_op_flight_disabled_hint():
    [response] = _serve_lines([{"op": "flight"}])
    assert response["enabled"] is False
    assert response["records"] == []
    assert "--flight-records" in response["error"]
