"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph import Graph, load_graph_format, save_graph_format


@pytest.fixture
def files(tmp_path):
    triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
    data = Graph(
        6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)]
    )
    qpath = str(tmp_path / "q.graph")
    dpath = str(tmp_path / "d.graph")
    save_graph_format(triangle, qpath)
    save_graph_format(data, dpath)
    return qpath, dpath, tmp_path


class TestMatchCommand:
    def test_lists_embeddings(self, files, capsys):
        qpath, dpath, _ = files
        assert main(["match", qpath, dpath]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert sorted(out) == ["0 1 2", "2 3 4"]

    def test_limit(self, files, capsys):
        qpath, dpath, _ = files
        main(["match", qpath, dpath, "--limit", "1"])
        assert len(capsys.readouterr().out.strip().splitlines()) == 1

    def test_all_autos(self, files, capsys):
        qpath, dpath, _ = files
        main(["match", qpath, dpath, "--all-autos"])
        assert len(capsys.readouterr().out.strip().splitlines()) == 12

    def test_order_strategy_accepted(self, files, capsys):
        qpath, dpath, _ = files
        assert main(["match", qpath, dpath, "--order", "path_ranked"]) == 0
        assert capsys.readouterr().out.strip()


class TestCountCommand:
    def test_count(self, files, capsys):
        qpath, dpath, _ = files
        assert main(["count", qpath, dpath]) == 0
        assert capsys.readouterr().out.strip() == "2"


class TestIndexCommand:
    def test_writes_loadable_index(self, files):
        from repro.core import Enumerator, load_ceci

        qpath, dpath, tmp_path = files
        out = str(tmp_path / "idx.ceci")
        assert main(["index", qpath, dpath, out]) == 0
        data = load_graph_format(dpath)
        loaded = load_ceci(out, data)
        assert len(Enumerator(loaded).collect()) == 2


class TestStatsCommand:
    def test_emits_json(self, files, capsys):
        qpath, dpath, _ = files
        assert main(["stats", qpath, dpath]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["embeddings"] == 2
        assert payload["recursive_calls"] > 0
        assert "phases_seconds" in payload


class TestGenerateCommand:
    @pytest.mark.parametrize("kind", ["powerlaw", "kronecker", "erdos"])
    def test_generates_loadable_graph(self, kind, tmp_path):
        out = str(tmp_path / f"{kind}.graph")
        assert main(["generate", kind, out, "--vertices", "64",
                     "--edges-per-vertex", "3", "--labels", "4"]) == 0
        graph = load_graph_format(out)
        assert graph.num_vertices >= 32
        assert len(graph.distinct_labels()) > 1


class TestServeCommand:
    def test_serves_jsonl_requests(self, files, capsys, monkeypatch):
        import io
        import sys

        _, dpath, _ = files
        lines = [
            json.dumps({"query": {"n": 3,
                                  "edges": [[0, 1], [1, 2], [0, 2]]},
                        "id": 1}),
            json.dumps({"cmd": "shutdown"}),
        ]
        monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        assert main(["serve", dpath, "--workers", "2",
                     "--metrics", "json"]) == 0
        captured = capsys.readouterr()
        response = json.loads(captured.out.splitlines()[0])
        assert response["id"] == 1 and response["status"] == "ok"
        assert response["count"] == 2
        assert "# served 1 requests" in captured.err
        snapshot = json.loads(
            captured.err.split("# served 1 requests", 1)[1]
        )
        assert snapshot["index_cache"]["misses"] == 1


class TestBenchServiceCommand:
    def test_writes_schema_valid_report(self, tmp_path, capsys):
        out = str(tmp_path / "bench.json")
        assert main([
            "bench-service", "--vertices", "400", "--labels", "3",
            "--graph-seed", "7", "--queries", "2", "--requests", "6",
            "--min-vertices", "3", "--max-vertices", "4",
            "--max-embeddings", "500", "--workers", "2", "--out", out,
        ]) == 0
        captured = capsys.readouterr()
        with open(out) as handle:
            report = json.load(handle)
        assert report == json.loads(captured.out)
        assert report["schema"] == 1
        for key in ("cold", "warm", "warm_speedup", "latency",
                    "throughput_rps", "statuses", "index_cache"):
            assert key in report, key
        assert report["statuses"]["ok"] == 2 * 2 + 6
        assert "# warm speedup" in captured.err
