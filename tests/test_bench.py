"""Tests for the benchmark substrate: datasets, queries, result tables."""

import pytest

from repro.bench import (
    DATASETS,
    QG1,
    QG2,
    QG3,
    QG4,
    QG5,
    QUERY_GRAPHS,
    ResultTable,
    dataset_names,
    geometric_mean,
    load_dataset,
    query_graph,
    table1_rows,
    timed,
    warm,
)
from repro.core import automorphisms


class TestQueryGraphs:
    def test_all_five_present(self):
        assert set(QUERY_GRAPHS) == {"QG1", "QG2", "QG3", "QG4", "QG5"}

    def test_shapes_match_table2_edge_counts(self):
        # Table 2's theoretical sizes pin |Eq|: 3, 4, 5, 6, 6.
        assert (QG1.num_vertices, QG1.num_edges) == (3, 3)
        assert (QG2.num_vertices, QG2.num_edges) == (4, 4)
        assert (QG3.num_vertices, QG3.num_edges) == (4, 5)
        assert (QG4.num_vertices, QG4.num_edges) == (4, 6)
        assert (QG5.num_vertices, QG5.num_edges) == (5, 6)

    def test_uniform_label_zero(self):
        for query in QUERY_GRAPHS.values():
            assert query.uniform_label() == 0

    def test_connected(self):
        for query in QUERY_GRAPHS.values():
            assert query.is_connected()

    def test_automorphism_groups(self):
        # triangle 6, square 8, diamond 4, clique 24, house 2
        expected = {"QG1": 6, "QG2": 8, "QG3": 4, "QG4": 24, "QG5": 2}
        for name, size in expected.items():
            assert len(automorphisms(QUERY_GRAPHS[name])) == size

    def test_lookup_helpers(self):
        assert query_graph("QG3") is QG3
        with pytest.raises(ValueError):
            query_graph("QG9")


class TestDatasets:
    def test_ten_table1_rows(self):
        assert len(dataset_names()) == 10
        assert len(table1_rows()) == 10

    def test_load_is_cached(self):
        assert load_dataset("YT") is load_dataset("YT")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("XX")

    def test_directedness_matches_spec(self):
        for abbr, spec in DATASETS.items():
            if abbr in ("CP", "WG", "WT"):  # cheap directed ones
                assert load_dataset(abbr).directed == spec.directed

    def test_hu_is_multilabeled(self):
        hu = load_dataset("HU")
        assert any(len(hu.labels_of(v)) > 1 for v in hu.vertices())
        assert len(hu.distinct_labels()) > 10

    def test_power_law_analogs_are_skewed(self):
        for abbr in ("YT", "WT"):
            graph = load_dataset(abbr)
            seq = graph.degree_sequence()
            assert seq[0] > 4 * seq[len(seq) // 2]

    def test_warm_forces_nlc(self):
        graph = load_dataset("YT")
        assert warm(graph) is graph
        assert graph.neighbor_label_counts(0) is not None


class TestResultTable:
    def test_render_contains_rows_and_notes(self):
        table = ResultTable("demo", ["a", "b"])
        table.add(a=1, b=2.5)
        table.note("a note")
        rendered = table.render()
        assert "demo" in rendered
        assert "2.50" in rendered
        assert "note: a note" in rendered

    def test_column_extraction(self):
        table = ResultTable("demo", ["x"])
        table.add(x=1)
        table.add(x=2)
        assert table.column("x") == [1, 2]

    def test_missing_cell_renders_empty(self):
        table = ResultTable("demo", ["x", "y"])
        table.add(x=1)
        assert table.render()  # no KeyError

    def test_float_formatting(self):
        table = ResultTable("demo", ["v"])
        table.add(v=1234.5)
        table.add(v=3.14159)
        table.add(v=0.01234)
        rendered = table.render()
        assert "1234" in rendered or "1235" in rendered
        assert "3.14" in rendered
        assert "0.0123" in rendered


class TestHelpers:
    def test_timed(self):
        value, seconds = timed(lambda: 41 + 1)
        assert value == 42
        assert seconds >= 0.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)  # zeros skipped
