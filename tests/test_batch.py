"""Property and metamorphic tests for the set-at-a-time batch engine.

The batched frontier join (DESIGN.md §12) must be an *exact* drop-in
for the recursive enumerator: every vectorised primitive is checked
against its scalar counterpart on random inputs, and the full engine is
checked against the recursive engine for identical embedding **order**
(not just sets), identical ``limit`` prefixes, and identical budget
truncation points.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from conftest import random_labeled_instance
from repro.core.batch import (
    ENGINE_CHOICES,
    BatchEngine,
    batch_capable,
    used_exclusion_mask,
)
from repro.core.enumeration import Enumerator
from repro.core.matcher import CECIMatcher
from repro.core.store import encode_pairs, lookup_pairs
from repro.graph import Graph
from repro.kernels import expand_blocks, member_mask, searchsorted_blocks
from repro.resilience import Budget


def _random_triple(rng: random.Random):
    """A random CSR (keys, offsets, values) triple as encode_pairs
    builds it: sorted unique keys, per-key sorted value runs (duplicate
    values allowed — multigraph-shaped runs must round-trip too)."""
    mapping = {}
    for key in rng.sample(range(50), rng.randint(0, 12)):
        run = sorted(rng.choices(range(200), k=rng.randint(1, 9)))
        mapping[key] = run
    return mapping, encode_pairs(mapping)


class TestFrontierJoinPrimitives:
    """searchsorted_blocks + expand_blocks == per-row lookup_pairs."""

    @pytest.mark.parametrize("seed", range(30))
    def test_batched_join_equals_per_row_lookup(self, seed):
        rng = random.Random(seed)
        mapping, triple = _random_triple(rng)
        # Probe present keys, absent keys, and *duplicates* of both —
        # a frontier routinely probes the same parent match many times.
        probes = rng.choices(range(60), k=rng.randint(0, 40))
        probe_arr = np.asarray(probes, dtype=np.int64)

        keys, offsets, values_arr = triple
        starts, counts = searchsorted_blocks(keys, offsets, probe_arr)
        rows, values = expand_blocks(values_arr, starts, counts)

        expected_rows, expected_values = [], []
        for i, key in enumerate(probes):
            for v in lookup_pairs(triple, key):
                expected_rows.append(i)
                expected_values.append(int(v))
        assert rows.tolist() == expected_rows
        assert values.tolist() == expected_values
        # And per-probe block sizes agree with the scalar lookup.
        assert counts.tolist() == [
            len(lookup_pairs(triple, key)) for key in probes
        ]

    def test_empty_frontier(self):
        _, (keys, offsets, values_arr) = _random_triple(random.Random(3))
        empty = np.empty(0, dtype=np.int64)
        starts, counts = searchsorted_blocks(keys, offsets, empty)
        assert len(starts) == len(counts) == 0
        rows, values = expand_blocks(values_arr, starts, counts)
        assert len(rows) == len(values) == 0

    def test_empty_triple(self):
        keys, offsets, values_arr = encode_pairs({})
        probes = np.asarray([0, 7, 7, 99], dtype=np.int64)
        starts, counts = searchsorted_blocks(keys, offsets, probes)
        assert counts.tolist() == [0, 0, 0, 0]
        rows, values = expand_blocks(values_arr, starts, counts)
        assert len(rows) == len(values) == 0

    def test_probe_beyond_last_key(self):
        keys, offsets, _ = encode_pairs({5: [1, 2]})
        probes = np.asarray([4, 5, 6, 10**9], dtype=np.int64)
        _, counts = searchsorted_blocks(keys, offsets, probes)
        assert counts.tolist() == [0, 2, 0, 0]

    @pytest.mark.parametrize("seed", range(10))
    def test_member_mask_equals_set_membership(self, seed):
        rng = random.Random(seed * 11 + 5)
        haystack = np.unique(
            np.asarray(
                rng.choices(range(100), k=rng.randint(0, 25)), dtype=np.int64
            )
        )
        needles = np.asarray(
            rng.choices(range(120), k=rng.randint(0, 40)), dtype=np.int64
        )
        present = set(haystack.tolist())
        mask = member_mask(haystack, needles)
        assert mask.tolist() == [int(n) in present for n in needles]

    def test_member_mask_empty_haystack(self):
        needles = np.asarray([1, 2, 3], dtype=np.int64)
        assert not member_mask(np.empty(0, dtype=np.int64), needles).any()


class TestUsedExclusionMask:
    @pytest.mark.parametrize("seed", range(10))
    def test_equals_set_based_exclusion(self, seed):
        rng = random.Random(seed * 7 + 2)
        n_rows, n_cols = rng.randint(1, 12), rng.randint(2, 6)
        frontier = np.asarray(
            [
                [rng.randint(-1, 8) for _ in range(n_cols)]
                for _ in range(n_rows)
            ],
            dtype=np.int64,
        )
        used_cols = rng.sample(range(n_cols), rng.randint(0, n_cols))
        rows = np.asarray(
            rng.choices(range(n_rows), k=rng.randint(0, 20)), dtype=np.int64
        )
        cand = np.asarray(
            [rng.randint(0, 8) for _ in range(len(rows))], dtype=np.int64
        )
        mask = used_exclusion_mask(frontier, rows, cand, used_cols)
        expected = [
            int(c) not in {int(frontier[r, col]) for col in used_cols}
            for r, c in zip(rows, cand)
        ]
        assert mask.tolist() == expected

    def test_no_used_cols_keeps_everything(self):
        frontier = np.asarray([[3, -1]], dtype=np.int64)
        rows = np.zeros(4, dtype=np.int64)
        cand = np.asarray([0, 1, 2, 3], dtype=np.int64)
        assert used_exclusion_mask(frontier, rows, cand, ()).all()


def _instances(count):
    built = []
    seed = 0
    while len(built) < count:
        instance = random_labeled_instance(seed)
        seed += 1
        if instance is not None:
            built.append(instance)
    return built


def _pair(query, data, **kwargs):
    """(batch matcher, recursive matcher) over the same instance."""
    batch = CECIMatcher(
        query, data, store="compact", engine="batch", **kwargs
    )
    recursive = CECIMatcher(
        query, data, store="compact", engine="recursive", **kwargs
    )
    return batch, recursive


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_exact_order_parity(self, seed):
        instance = random_labeled_instance(seed)
        if instance is None:
            pytest.skip("seed yields no connected query")
        query, data = instance
        batch, recursive = _pair(query, data, break_automorphisms=False)
        assert batch.match() == recursive.match()  # order, not just set

    @pytest.mark.parametrize("seed", [2, 5, 9])
    def test_symmetry_broken_order_parity(self, seed):
        instance = random_labeled_instance(seed)
        if instance is None:
            pytest.skip("seed yields no connected query")
        query, data = instance
        batch, recursive = _pair(query, data, break_automorphisms=True)
        assert batch.match() == recursive.match()

    @pytest.mark.parametrize("limit", [1, 2, 5, 17])
    def test_limit_prefixes_identical(self, limit):
        for query, data in _instances(6):
            batch, recursive = _pair(query, data, break_automorphisms=False)
            assert batch.match(limit=limit) == recursive.match(limit=limit)

    def test_count_matches_collect(self):
        for query, data in _instances(4):
            matcher = CECIMatcher(query, data, store="compact", engine="batch")
            count = matcher.count()
            assert count == len(matcher.match())

    def test_work_counters_identical(self):
        """The batch engine must *account* like the recursion, not just
        answer like it: calls and intersections are the same numbers."""
        for query, data in _instances(5):
            batch, recursive = _pair(query, data, break_automorphisms=False)
            batch.match()
            recursive.match()
            assert batch.stats.recursive_calls == (
                recursive.stats.recursive_calls
            )
            assert batch.stats.intersections == recursive.stats.intersections

    def test_batch_counters_only_on_batch_engine(self):
        query, data = _instances(1)[0]
        batch, recursive = _pair(query, data)
        batch.match()
        recursive.match()
        assert batch.stats.batch_blocks > 0
        assert batch.stats.batch_rows >= batch.stats.batch_blocks
        assert recursive.stats.batch_blocks == 0
        assert recursive.stats.batch_rows == 0


class TestUnitPrefixParity:
    def _enumerators(self, query, data):
        out = []
        for engine in ("batch", "recursive"):
            matcher = CECIMatcher(
                query, data, store="compact", engine=engine,
                break_automorphisms=False,
            )
            ceci = matcher.build()
            out.append(
                (
                    matcher,
                    Enumerator(
                        ceci,
                        symmetry=matcher.symmetry,
                        use_intersection=True,
                        stats=matcher.stats,
                        engine=engine,
                    ),
                )
            )
        return out

    def test_unit_streams_identical(self):
        for query, data in _instances(4):
            (bm, be), (rm, re_) = self._enumerators(query, data)
            for unit in bm.work_units(beta=None):
                got = list(be.embeddings_from_unit(unit.prefix))
                want = list(re_.embeddings_from_unit(unit.prefix))
                assert got == want, unit.prefix

    def test_collect_from_unit_respects_limit(self):
        query, data = _instances(1)[0]
        (bm, be), (rm, re_) = self._enumerators(query, data)
        for unit in bm.work_units(beta=None):
            assert be.collect_from_unit(unit.prefix, limit=2) == (
                re_.collect_from_unit(unit.prefix, limit=2)
            )

    def test_dead_prefix_yields_nothing(self):
        """A prefix reusing one data vertex twice is injectivity-dead;
        both engines must return an empty stream, not crash."""
        query = Graph(3, [(0, 1), (1, 2), (0, 2)])
        data = Graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        (bm, be), (rm, re_) = self._enumerators(query, data)
        dead = (0, 0)
        assert list(be.embeddings_from_unit(dead)) == []
        assert list(re_.embeddings_from_unit(dead)) == []

    def test_overlong_prefix_rejected(self):
        query = Graph(2, [(0, 1)])
        data = Graph(3, [(0, 1), (1, 2)])
        (bm, be), _ = self._enumerators(query, data)
        with pytest.raises(ValueError):
            list(be.embeddings_from_unit((0, 1, 2)))


class TestBudgetTruncationParity:
    """Budget axes must cut the batch stream at the *same embedding* as
    the recursive engine — PartialResult semantics are part of the
    engine contract, not an approximation."""

    def _run(self, query, data, engine, budget):
        matcher = CECIMatcher(
            query, data, store="compact", engine=engine, budget=budget,
            break_automorphisms=False,
        )
        result = matcher.run()
        return result, matcher

    @pytest.mark.parametrize("max_embeddings", [1, 3, 8])
    def test_max_embeddings_identical_prefix(self, max_embeddings):
        for query, data in _instances(4):
            budget = Budget(max_embeddings=max_embeddings)
            b_result, _ = self._run(query, data, "batch", budget)
            r_result, _ = self._run(query, data, "recursive", budget)
            assert list(b_result) == list(r_result)
            assert b_result.truncated == r_result.truncated
            assert b_result.stop_reason == r_result.stop_reason

    @pytest.mark.parametrize("max_calls", [1, 5, 20, 200])
    def test_max_calls_identical_prefix(self, max_calls):
        for query, data in _instances(4):
            budget = Budget(max_calls=max_calls)
            b_result, bm = self._run(query, data, "batch", budget)
            r_result, rm = self._run(query, data, "recursive", budget)
            assert list(b_result) == list(r_result)
            assert b_result.stop_reason == r_result.stop_reason
            assert bm.stats.recursive_calls == rm.stats.recursive_calls

    def test_max_memory_identical_prefix(self):
        for query, data in _instances(3):
            budget = Budget(max_memory_bytes=400)
            b_result, _ = self._run(query, data, "batch", budget)
            r_result, _ = self._run(query, data, "recursive", budget)
            assert list(b_result) == list(r_result)
            assert b_result.stop_reason == r_result.stop_reason


class TestEngineSelection:
    def test_engine_choices_exported(self):
        assert ENGINE_CHOICES == ("auto", "recursive", "batch")

    def test_auto_picks_batch_on_compact_intersection(self):
        query, data = _instances(1)[0]
        matcher = CECIMatcher(query, data, store="compact")
        assert matcher.enumerator().engine == "batch"

    def test_auto_stays_recursive_on_dict_store(self):
        query, data = _instances(1)[0]
        matcher = CECIMatcher(query, data, store="dict")
        assert matcher.enumerator().engine == "recursive"

    def test_forced_batch_on_dict_store_rejected(self):
        query, data = _instances(1)[0]
        with pytest.raises(ValueError):
            CECIMatcher(query, data, store="dict", engine="batch")

    def test_forced_batch_without_intersection_rejected(self):
        query, data = _instances(1)[0]
        with pytest.raises(ValueError):
            CECIMatcher(
                query, data, store="compact", engine="batch",
                use_intersection=False,
            )

    def test_unknown_engine_rejected(self):
        query, data = _instances(1)[0]
        with pytest.raises(ValueError):
            CECIMatcher(query, data, engine="vectorized")

    def test_enumerator_forced_batch_on_incapable_store_rejected(self):
        query, data = _instances(1)[0]
        matcher = CECIMatcher(query, data, store="dict")
        ceci = matcher.build()
        with pytest.raises(ValueError):
            Enumerator(
                ceci,
                symmetry=matcher.symmetry,
                use_intersection=True,
                stats=matcher.stats,
                engine="batch",
            )

    def test_batch_capable_requires_intersection(self):
        query, data = _instances(1)[0]
        matcher = CECIMatcher(query, data, store="compact")
        ceci = matcher.build()
        assert batch_capable(ceci, use_intersection=True)
        assert not batch_capable(ceci, use_intersection=False)


class TestBatchEngineInternals:
    def _engine(self, query, data):
        matcher = CECIMatcher(
            query, data, store="compact", break_automorphisms=False
        )
        ceci = matcher.build()
        return BatchEngine(ceci, matcher.symmetry, matcher.stats), matcher

    def test_root_frontier_shape(self):
        query, data = _instances(1)[0]
        engine, matcher = self._engine(query, data)
        pivots = engine.ceci.pivots
        frontier = engine.root_frontier(pivots)
        assert frontier.shape == (len(pivots), query.num_vertices)
        root = engine.tree.root
        assert frontier[:, root].tolist() == [int(p) for p in pivots]
        others = [c for c in range(query.num_vertices) if c != root]
        if others and len(frontier):
            assert (frontier[:, others] == -1).all()

    def test_seed_frontier_dead_prefix_is_none(self):
        query = Graph(3, [(0, 1), (1, 2), (0, 2)])
        data = Graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        engine, _ = self._engine(query, data)
        assert engine.seed_frontier((0, 0)) is None

    def test_blocks_stream_in_dfs_order(self):
        query, data = _instances(1)[0]
        engine, matcher = self._engine(query, data)
        frontier = engine.root_frontier(engine.ceci.pivots)
        streamed = [
            tuple(row)
            for block in engine.blocks(frontier, 1, [None])
            for row in block.tolist()
        ]
        recursive = CECIMatcher(
            query, data, store="compact", engine="recursive",
            break_automorphisms=False,
        )
        assert streamed == recursive.match()
