"""Golden embedding-count regression fixtures.

``golden_counts.json`` pins the exact embedding count of a set of fixed
instances — hand-built graphs with closed-form counts and seeded
generator configurations.  Any enumeration-layer change that alters a
count (kernels, cache, refinement, symmetry machinery) fails here with
the instance name, which is far easier to bisect than a broken
integration test.

Counts are full embedding sets (symmetry breaking disabled) and must be
reproduced by every intersection kernel and by edge verification.

Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src python tests/test_golden_counts.py --regen
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Tuple

import pytest

from repro.core.matcher import CECIMatcher
from repro.graph import Graph, erdos_renyi, generate_query, inject_labels
from repro.graph.generators import dense_labeled, power_law

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_counts.json")

MODES = [
    "auto",
    "merge",
    "gallop",
    "bitset",
    "edge-verify",
    # Service-path configurations: the same instances answered by a
    # resident MatchService — "service-cold" pays a fresh build,
    # "service-warm" must serve the repeat from the index cache's hit
    # path.  Both must reproduce the pinned sequential counts, so a
    # cache-layer change that corrupts reuse fails here by name.
    "service-cold",
    "service-warm",
    # Engine axis (DESIGN.md §12): the set-at-a-time batch engine
    # forced on over the compact store, and the recursion forced on
    # over the same store — a divergence between them names the broken
    # instance directly.
    "batch",
    "recursive-compact",
    # Sharded tier (DESIGN.md §14): the same instances answered by the
    # multi-process ShardedMatchService — pivot partitions fanned across
    # two shard processes over a shared mmap'd index, merged exactly.
    "sharded",
]


def _quickstart() -> Tuple[Graph, Graph]:
    """The README quickstart: unlabeled triangle in a 5-vertex graph of
    two triangles sharing vertex 2."""
    triangle = Graph(3, [(0, 1), (1, 2), (0, 2)])
    data = Graph(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
    return triangle, data


def _quickstart_labeled() -> Tuple[Graph, Graph]:
    """The examples/quickstart.py instance: an A-B-C triangle query in
    the 9-vertex two-community data graph."""
    data = Graph(
        9,
        [
            (0, 1), (0, 2), (1, 2),
            (2, 3), (3, 4), (2, 4),
            (4, 5), (5, 6), (4, 6),
            (6, 7), (7, 8),
        ],
        labels=["A", "B", "C", "B", "A", "B", "C", "B", "A"],
    )
    query = Graph(3, [(0, 1), (1, 2), (0, 2)], labels=["A", "B", "C"])
    return query, data


def _paper_figure1() -> Tuple[Graph, Graph]:
    """The Figure 1 five-vertex query against a data graph realizing its
    two embeddings plus false candidates (the conftest fixture pair)."""
    query = Graph(
        5,
        [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4)],
        labels=["A", "B", "C", "D", "E"],
    )
    labels = {
        0: "Z",
        1: "A", 2: "A",
        3: "B", 5: "B", 7: "B", 9: "B",
        4: "C", 6: "C", 8: "C", 10: "C",
        11: "D", 13: "D", 15: "D",
        12: "E", 14: "E",
    }
    edges = [
        (1, 3), (1, 5), (1, 7), (1, 4), (1, 6),
        (3, 4), (5, 4), (5, 6), (7, 6),
        (3, 11), (5, 13), (7, 15),
        (4, 11), (6, 13),
        (4, 12), (6, 14),
        (2, 7), (2, 9), (2, 8), (9, 8), (9, 15), (8, 15), (8, 11),
        (0, 15),
        (10, 16), (10, 17), (10, 18), (10, 19),
        (20, 16), (20, 17), (20, 18), (20, 19),
        (21, 16), (21, 17), (21, 18), (21, 19),
    ]
    labels.update({16: "A", 17: "B", 18: "D", 19: "E", 20: "C", 21: "C"})
    return query, Graph(22, edges, labels=labels)


def _square_in_k5() -> Tuple[Graph, Graph]:
    """4-cycle in the unlabeled K5: closed form 5!/(5-4)! ordered
    choices filtered by the cycle's automorphisms — exactly 120."""
    square = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    k5 = Graph(5, [(i, j) for i in range(5) for j in range(i + 1, 5)])
    return square, k5


def _generated(kind: str) -> Tuple[Graph, Graph]:
    if kind == "erdos":
        data = inject_labels(erdos_renyi(40, 140, seed=17), 2, seed=17)
        query = generate_query(data, 4, seed=5)
    elif kind == "powerlaw":
        data = inject_labels(power_law(50, 4, seed=23), 3, seed=23)
        query = generate_query(data, 5, seed=8)
    elif kind == "dense":
        data = dense_labeled(24, 3, seed=4)
        query = generate_query(data, 4, seed=12)
    else:  # pragma: no cover - config typo guard
        raise ValueError(kind)
    return query, data


INSTANCES: Dict[str, Callable[[], Tuple[Graph, Graph]]] = {
    "quickstart-triangle": _quickstart,
    "quickstart-labeled-abc": _quickstart_labeled,
    "paper-figure1": _paper_figure1,
    "square-in-k5": _square_in_k5,
    "erdos-40v-140e-2l": lambda: _generated("erdos"),
    "powerlaw-50v-3l": lambda: _generated("powerlaw"),
    "dense-24v-3l": lambda: _generated("dense"),
}


def count_with(query: Graph, data: Graph, mode: str) -> int:
    if mode.startswith("service-"):
        return _service_count(query, data, warm=mode == "service-warm")
    if mode == "sharded":
        return _sharded_count(query, data)
    if mode in ("batch", "recursive-compact"):
        matcher = CECIMatcher(
            query,
            data,
            break_automorphisms=False,
            store="compact",
            engine="batch" if mode == "batch" else "recursive",
        )
        return matcher.count()
    matcher = CECIMatcher(
        query,
        data,
        break_automorphisms=False,
        use_intersection=mode != "edge-verify",
        kernel="auto" if mode == "edge-verify" else mode,
    )
    return matcher.count()


def _service_count(query: Graph, data: Graph, warm: bool) -> int:
    from repro.service import MatchRequest, MatchService

    with MatchService(data, workers=2) as service:
        response = service.match(MatchRequest(query, break_automorphisms=False))
        assert response.ok and response.cache == "miss", response.status
        if warm:
            response = service.match(
                MatchRequest(query, break_automorphisms=False)
            )
            assert response.ok and response.cache == "hit", response.cache
        return response.count


def _sharded_count(query: Graph, data: Graph) -> int:
    from repro.service import MatchRequest
    from repro.service.shards import ShardedMatchService

    with ShardedMatchService(data, shards=2) as service:
        response = service.match(MatchRequest(query, break_automorphisms=False))
        assert response.ok, (response.status, response.error)
        return response.count


def load_golden() -> Dict[str, int]:
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", sorted(INSTANCES))
@pytest.mark.parametrize("mode", MODES)
def test_golden_count(name, mode):
    golden = load_golden()
    assert name in golden, (
        f"{name} missing from golden_counts.json — regenerate with "
        f"PYTHONPATH=src python tests/test_golden_counts.py --regen"
    )
    query, data = INSTANCES[name]()
    assert count_with(query, data, mode) == golden[name]


def test_golden_file_has_no_orphans():
    """Every pinned count corresponds to a buildable instance."""
    assert set(load_golden()) == set(INSTANCES)


def test_paper_figure1_count_is_two():
    """Figure 1 promises exactly two embeddings — independent of the
    JSON file, since this one is stated in the paper itself."""
    query, data = _paper_figure1()
    assert count_with(query, data, "auto") == 2


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit(__doc__)
    counts = {}
    for name, build in sorted(INSTANCES.items()):
        query, data = build()
        per_mode = {mode: count_with(query, data, mode) for mode in MODES}
        assert len(set(per_mode.values())) == 1, (name, per_mode)
        counts[name] = per_mode["auto"]
        print(f"{name}: {counts[name]}")
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(counts, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")
