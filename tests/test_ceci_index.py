"""Tests for CECI construction, filtering and refinement — including a
vertex-by-vertex walk of the paper's Figure 1/3 worked example."""

import pytest

from repro.core import (
    CECI,
    MatchStats,
    QueryTree,
    build_ceci,
    initial_candidates,
    intersect_sorted,
    refine_ceci,
)
from repro.core.filtering import FilterConfig
from repro.graph import Graph


@pytest.fixture
def paper_ceci(paper_query, paper_data):
    """The CECI of the Figure 1 instance after Algorithm 1 (filtering),
    before refinement; rooted at u1 as in the paper."""
    tree = QueryTree(paper_query, root=0)
    pivots = initial_candidates(paper_query, paper_data, 0)
    stats = MatchStats()
    ceci = build_ceci(tree, paper_data, pivots, stats)
    return ceci, stats


class TestPaperExampleFiltering:
    def test_initial_pivots_are_v1_v2(self, paper_query, paper_data):
        assert initial_candidates(paper_query, paper_data, 0) == [1, 2]

    def test_te_candidates_of_u2_before_cascade_effect(self, paper_ceci):
        ceci, _ = paper_ceci
        # <v1, {v3,v5,v7}> survives; the <v2, {v7,v9}> entry is cascade-
        # deleted when u3's entry for v2 empties (v8 fails NLCF).
        assert ceci.te[1] == {1: [3, 5, 7]}

    def test_te_candidates_of_u3(self, paper_ceci):
        ceci, _ = paper_ceci
        assert ceci.te[2] == {1: [4, 6]}

    def test_v2_cascaded_out_of_pivots(self, paper_ceci):
        ceci, stats = paper_ceci
        assert ceci.pivots == [1]
        assert stats.removed_by_cascade >= 1

    def test_nte_candidates_of_u3_under_u2(self, paper_ceci):
        ceci, _ = paper_ceci
        # Paper Section 3.2: <v3,{v4}>, <v5,{v4,v6}>, <v7,{v6}>.
        assert ceci.nte[2][1] == {3: [4], 5: [4, 6], 7: [6]}

    def test_te_candidates_of_u4_and_u5(self, paper_ceci):
        ceci, _ = paper_ceci
        assert ceci.te[3] == {3: [11], 5: [13], 7: [15]}
        assert ceci.te[4] == {4: [12], 6: [14]}

    def test_nte_candidates_of_u4_under_u3(self, paper_ceci):
        ceci, _ = paper_ceci
        assert ceci.nte[3][2] == {4: [11], 6: [13]}

    def test_v8_removed_by_nlc_filter(self, paper_ceci):
        _, stats = paper_ceci
        assert stats.removed_by_nlc >= 1


class TestPaperExampleRefinement:
    def test_cardinalities_match_paper(self, paper_ceci):
        ceci, _ = paper_ceci
        refine_ceci(ceci)
        # Leaves: all ones.
        assert ceci.cardinality[3] == {11: 1, 13: 1}
        assert ceci.cardinality[4] == {12: 1, 14: 1}
        # u2: v3 and v5 have cardinality 1; v7 is refined away because
        # its only child v15 is not in the NTE candidates of u4.
        assert ceci.cardinality[1] == {3: 1, 5: 1}
        # u3: each candidate supports one u5 leaf.
        assert ceci.cardinality[2] == {4: 1, 6: 1}
        # Root cluster: product over children sums = (1+1) x (1+1) = 4.
        # An *upper bound* on the 2 true embeddings — Section 4.3 notes
        # the cardinality deliberately overestimates.
        assert ceci.cardinality[0] == {1: 4}
        assert ceci.cluster_cardinality(1) == 4

    def test_v7_and_v15_removed(self, paper_ceci):
        ceci, _ = paper_ceci
        stats = MatchStats()
        refine_ceci(ceci, stats)
        assert ceci.te[1] == {1: [3, 5]}
        assert 7 not in ceci.te[3]  # v7's u4 entry gone
        # The <v7, {v6}> NTE entry of u3 is removed despite v6's own
        # cardinality being fine (paper's exact example).
        assert 7 not in ceci.nte[2][1]
        assert stats.removed_by_refinement >= 2

    def test_refined_index_yields_exactly_the_two_embeddings(
        self, paper_query, paper_data
    ):
        from repro import match

        found = set(match(paper_query, paper_data))
        assert found == {(1, 3, 4, 11, 12), (1, 5, 6, 13, 14)}


class TestCECIStructure:
    def test_size_counters(self, paper_ceci):
        ceci, stats = paper_ceci
        assert stats.te_candidate_edges == ceci.te_edge_count()
        assert stats.nte_candidate_edges == ceci.nte_edge_count()
        assert stats.index_bytes == 8 * (
            ceci.te_edge_count() + ceci.nte_edge_count()
        )

    def test_size_below_theoretical_bound(self, paper_query, paper_data, paper_ceci):
        _, stats = paper_ceci
        theoretical = stats.theoretical_bytes(
            paper_query.num_edges, paper_data.num_edges
        )
        assert stats.index_bytes < theoretical
        assert 0 < stats.space_saved_percent(
            paper_query.num_edges, paper_data.num_edges
        ) < 100

    def test_remove_candidate_scrubs_everywhere(self, paper_ceci):
        ceci, _ = paper_ceci
        ceci.remove_candidate(1, 5)  # drop v5 as candidate of u2
        assert 5 not in ceci.te[1][1]
        assert 5 not in ceci.te[3]  # key removed from child u4
        assert 5 not in ceci.nte[2][1]  # key removed from NTE child u3

    def test_te_union_reflects_cascades(self, paper_ceci):
        ceci, _ = paper_ceci
        assert ceci.te_union(1) == {3, 5, 7}
        assert ceci.te_union(0) == {1}

    def test_repr_mentions_clusters(self, paper_ceci):
        ceci, _ = paper_ceci
        assert "clusters=1" in repr(ceci)


class TestFilterConfigAblation:
    def test_disabling_filters_keeps_completeness(self, paper_query, paper_data):
        from repro import match

        reference = set(match(paper_query, paper_data))
        for kwargs in (
            dict(use_degree_filter=False),
            dict(use_nlc_filter=False),
            dict(use_cascade=False),
            dict(use_refinement=False),
            dict(use_intersection=False),
            dict(
                use_degree_filter=False,
                use_nlc_filter=False,
                use_cascade=False,
                use_refinement=False,
                use_intersection=False,
            ),
        ):
            assert set(match(paper_query, paper_data, **kwargs)) == reference

    def test_weaker_filtering_never_shrinks_the_index(
        self, paper_query, paper_data
    ):
        tree = QueryTree(paper_query, root=0)
        pivots = initial_candidates(
            paper_query, paper_data, 0, use_nlc_filter=False
        )
        full = build_ceci(tree, paper_data, list(pivots), MatchStats())
        loose = build_ceci(
            tree,
            paper_data,
            list(pivots),
            MatchStats(),
            FilterConfig(use_nlc_filter=False),
        )
        assert (
            loose.te_edge_count() + loose.nte_edge_count()
            >= full.te_edge_count() + full.nte_edge_count()
        )


class TestIntersectSorted:
    def test_empty_input(self):
        assert intersect_sorted([]) == []

    def test_single_list_copied(self):
        src = [1, 2, 3]
        out = intersect_sorted([src])
        assert out == src and out is not src

    def test_two_lists(self):
        assert intersect_sorted([[1, 3, 5, 7], [3, 4, 5]]) == [3, 5]

    def test_three_lists(self):
        assert intersect_sorted([[1, 2, 3, 4], [2, 4, 6], [4, 5]]) == [4]

    def test_disjoint(self):
        assert intersect_sorted([[1, 2], [3, 4]]) == []

    def test_matches_set_intersection_on_random_input(self):
        import random

        rng = random.Random(42)
        for _ in range(50):
            lists = [
                sorted(rng.sample(range(60), rng.randint(0, 25)))
                for _ in range(rng.randint(1, 4))
            ]
            expected = set(lists[0])
            for other in lists[1:]:
                expected &= set(other)
            assert intersect_sorted(lists) == sorted(expected)
