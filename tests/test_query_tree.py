"""Tests for the BFS query tree and matching orders."""

import pytest

from repro.graph import Graph
from repro.core import QueryTree, bfs_order, edge_ranked_order, make_order, path_ranked_order


@pytest.fixture
def figure1_query():
    """Figure 1 query: u1..u5 -> 0..4, labels A,B,C,D,E."""
    return Graph(
        5,
        [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4)],
        labels=["A", "B", "C", "D", "E"],
    )


class TestQueryTree:
    def test_figure1_tree_and_non_tree_edges(self, figure1_query):
        tree = QueryTree(figure1_query, root=0)
        # Paper: TE = (u1,u2),(u1,u3),(u2,u4),(u3,u5); NTE = (u2,u3),(u3,u4)
        assert set(tree.tree_edges) == {(0, 1), (0, 2), (1, 3), (2, 4)}
        assert set(tree.non_tree_edges) == {(1, 2), (2, 3)}

    def test_bfs_order_default(self, figure1_query):
        tree = QueryTree(figure1_query, root=0)
        assert tree.order == (0, 1, 2, 3, 4)

    def test_parent_and_level(self, figure1_query):
        tree = QueryTree(figure1_query, root=0)
        assert tree.parent[0] == -1
        assert tree.parent[3] == 1
        assert tree.level[3] == 2

    def test_children(self, figure1_query):
        tree = QueryTree(figure1_query, root=0)
        assert tree.children[0] == (1, 2)
        assert tree.children[1] == (3,)
        assert tree.is_leaf(3)
        assert not tree.is_leaf(0)

    def test_nte_parent_orientation_follows_order(self, figure1_query):
        tree = QueryTree(figure1_query, root=0)
        assert tree.nte_parents[2] == (1,)  # (u2,u3): u2 earlier
        assert tree.nte_parents[3] == (2,)  # (u3,u4): u3 earlier
        assert tree.nte_children[1] == (2,)

    def test_reverse_order(self, figure1_query):
        tree = QueryTree(figure1_query, root=0)
        assert tree.reverse_order() == (4, 3, 2, 1, 0)

    def test_custom_tree_compatible_order_accepted(self, figure1_query):
        tree = QueryTree(figure1_query, root=0, order=[0, 2, 1, 4, 3])
        assert tree.order == (0, 2, 1, 4, 3)
        # NTE orientation flips with the order: u3 (=2) now precedes u2.
        assert (2, 1) in tree.non_tree_edges

    def test_order_violating_tree_parent_rejected(self, figure1_query):
        with pytest.raises(ValueError):
            QueryTree(figure1_query, root=0, order=[0, 3, 1, 2, 4])

    def test_order_not_permutation_rejected(self, figure1_query):
        with pytest.raises(ValueError):
            QueryTree(figure1_query, root=0, order=[0, 1, 2, 3])

    def test_order_must_start_at_root(self, figure1_query):
        with pytest.raises(ValueError):
            QueryTree(figure1_query, root=0, order=[1, 0, 2, 3, 4])

    def test_disconnected_query_rejected(self):
        with pytest.raises(ValueError):
            QueryTree(Graph(3, [(0, 1)]), root=0)

    def test_invalid_root_rejected(self, figure1_query):
        with pytest.raises(ValueError):
            QueryTree(figure1_query, root=99)

    def test_single_vertex_query(self):
        tree = QueryTree(Graph(1, []), root=0)
        assert tree.order == (0,)
        assert tree.tree_edges == ()
        assert tree.non_tree_edges == ()


class TestMatchingOrders:
    def test_bfs_order_levels(self, figure1_query):
        assert bfs_order(figure1_query, 0) == (0, 1, 2, 3, 4)

    def test_bfs_order_disconnected_rejected(self):
        with pytest.raises(ValueError):
            bfs_order(Graph(3, [(0, 1)]), 0)

    def test_edge_ranked_prefers_selective(self, figure1_query):
        # u3 (=2) has fewer candidates than u2 (=1) -> visited first.
        counts = [2, 10, 1, 5, 5]
        order = edge_ranked_order(figure1_query, 0, counts)
        assert order[0] == 0
        assert order.index(2) < order.index(1)

    def test_edge_ranked_is_tree_compatible(self, figure1_query):
        counts = [1] * 5
        order = edge_ranked_order(figure1_query, 0, counts)
        QueryTree(figure1_query, 0, order)  # must not raise

    def test_path_ranked_emits_cheapest_path_first(self, figure1_query):
        counts = [1, 100, 1, 100, 1]
        order = path_ranked_order(figure1_query, 0, counts)
        assert order[0] == 0
        # cheapest root-to-leaf path is 0-2-4
        assert order[1] == 2 and order[2] == 4

    def test_path_ranked_is_tree_compatible(self, figure1_query):
        counts = [3, 1, 4, 1, 5]
        order = path_ranked_order(figure1_query, 0, counts)
        QueryTree(figure1_query, 0, order)  # must not raise

    def test_make_order_dispatch(self, figure1_query):
        assert make_order(figure1_query, 0, "bfs") == bfs_order(figure1_query, 0)
        counts = [1] * 5
        assert make_order(figure1_query, 0, "edge_ranked", counts)
        assert make_order(figure1_query, 0, "path_ranked", counts)

    def test_make_order_requires_counts_for_ranked(self, figure1_query):
        with pytest.raises(ValueError):
            make_order(figure1_query, 0, "edge_ranked")

    def test_make_order_unknown_strategy(self, figure1_query):
        with pytest.raises(ValueError):
            make_order(figure1_query, 0, "magic", [1] * 5)

    def test_all_orders_yield_same_embeddings(self):
        from repro import match
        from repro.graph import inject_labels, power_law

        data = inject_labels(power_law(120, 4, seed=11), 3, seed=11)
        query = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
                      labels=[0, 1, 0, 2])
        reference = None
        for strategy in ("bfs", "edge_ranked", "path_ranked"):
            found = set(match(query, data, order_strategy=strategy,
                              break_automorphisms=False))
            if reference is None:
                reference = found
            assert found == reference
