"""Tests for the simulated distributed runtime."""

import pytest

from repro import CECIMatcher, Graph
from repro.distributed import (
    DistributedCECI,
    InMemoryStorage,
    SharedStorage,
    distribute_pivots,
    jaccard_similarity,
    lightweight_workload,
)
from repro.graph import power_law
from repro.resilience import FaultPlan


@pytest.fixture(scope="module")
def data():
    return power_law(400, 4, seed=73)


@pytest.fixture(scope="module")
def triangle_query():
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


class TestLightweightWorkload:
    def test_memory_mode_counts_neighborhood(self, data):
        v = 0
        expected_base = data.degree(v) + sum(
            data.degree(w) for w in data.neighbors(v)
        )
        n = data.num_vertices
        assert lightweight_workload(data, v, "memory") == pytest.approx(
            expected_base * (n - v) / n
        )

    def test_shared_mode_uses_degree_only(self, data):
        v = 5
        n = data.num_vertices
        assert lightweight_workload(data, v, "shared") == pytest.approx(
            data.degree(v) * (n - v) / n
        )

    def test_vertex_id_scaling_decreases(self, data):
        # same degree structure would weigh less for higher ids
        low = lightweight_workload(data, 10, "shared") / max(data.degree(10), 1)
        high = lightweight_workload(data, 390, "shared") / max(
            data.degree(390), 1
        )
        assert low > high

    def test_unknown_mode_rejected(self, data):
        with pytest.raises(ValueError):
            lightweight_workload(data, 0, "quantum")


class TestJaccard:
    def test_identical_neighborhoods(self):
        g = Graph(4, [(0, 2), (0, 3), (1, 2), (1, 3)])
        assert jaccard_similarity(g, 0, 1) == 1.0

    def test_disjoint_neighborhoods(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert jaccard_similarity(g, 0, 2) == 0.0

    def test_partial_overlap(self):
        g = Graph(5, [(0, 2), (0, 3), (1, 3), (1, 4)])
        assert jaccard_similarity(g, 0, 1) == pytest.approx(1 / 3)


class TestDistributePivots:
    def test_partition_covers_all_pivots(self, data):
        pivots = list(range(0, 100))
        machines = distribute_pivots(data, pivots, 4)
        flattened = sorted(v for ms in machines for v in ms)
        assert flattened == pivots

    def test_single_machine(self, data):
        machines = distribute_pivots(data, [1, 2, 3], 1)
        assert machines == [[1, 2, 3]]

    def test_load_roughly_balanced(self, data):
        pivots = list(range(200))
        machines = distribute_pivots(data, pivots, 4, mode="shared")
        loads = [
            sum(lightweight_workload(data, v, "shared") for v in ms)
            for ms in machines
        ]
        assert max(loads) <= 2.0 * (sum(loads) / len(loads))

    def test_similar_clusters_colocated(self):
        # Pivots 0 and 1 share their whole neighborhood (J = 1.0); with
        # enough filler pivots the group fits under the load cap and
        # must land on one machine.
        edges = [(0, 2), (0, 3), (1, 2), (1, 3)]
        fillers = list(range(4, 24, 2))
        edges += [(v, v + 1) for v in fillers]
        g = Graph(24, edges)
        machines = distribute_pivots(g, [0, 1] + fillers, 2, mode="memory")
        home = next(m for m, ms in enumerate(machines) if 0 in ms)
        assert 1 in machines[home]

    def test_invalid_machine_count(self, data):
        with pytest.raises(ValueError):
            distribute_pivots(data, [0], 0)


class TestDistributePivotsEdgeCases:
    """Property checks on the degenerate shapes the sharded service
    tier feeds the partitioner (DESIGN.md §14): whatever the pivot set
    looks like, every pivot lands exactly once and no machine carries
    more than the bounded-imbalance share of the workload."""

    @staticmethod
    def _assert_exact_cover(machines, pivots):
        placed = sorted(v for ms in machines for v in ms)
        assert placed == sorted(pivots), "pivot lost or duplicated"

    @staticmethod
    def _assert_bounded_imbalance(data, machines, mode):
        loads = [
            sum(lightweight_workload(data, v, mode) for v in ms)
            for ms in machines
        ]
        total = sum(loads)
        if total == 0:
            return
        nonempty = [load for load in loads if load]
        # One indivisible pivot can dominate, but no machine may exceed
        # the largest single workload plus its fair share of the rest.
        biggest = max(
            lightweight_workload(data, v, mode)
            for ms in machines
            for v in ms
        )
        bound = biggest + total / len(machines)
        assert max(nonempty) <= bound + 1e-9

    @pytest.mark.parametrize("mode", ["memory", "shared"])
    @pytest.mark.parametrize("machines", [1, 2, 4, 7])
    def test_empty_pivot_set(self, data, mode, machines):
        parts = distribute_pivots(data, [], machines, mode=mode)
        assert len(parts) == machines
        assert all(part == [] for part in parts)

    def test_edgeless_graph_zero_workloads(self):
        # Every workload is 0.0: the greedy assignment must still place
        # each pivot exactly once instead of dividing by the zero total.
        g = Graph(10, [])
        parts = distribute_pivots(g, list(range(10)), 3)
        self._assert_exact_cover(parts, list(range(10)))

    @pytest.mark.parametrize("mode", ["memory", "shared"])
    def test_fewer_pivots_than_machines(self, data, mode):
        pivots = [0, 1]
        parts = distribute_pivots(data, pivots, 8, mode=mode)
        assert len(parts) == 8
        self._assert_exact_cover(parts, pivots)
        # No machine hoards both while six sit idle — unless Jaccard
        # pinning demands it, which the shared mode never does.
        if mode == "shared":
            assert max(len(part) for part in parts) == 1

    def test_all_equal_degrees_balance_by_count(self):
        # A cycle: every vertex has degree 2, so the only workload skew
        # is the (n - v)/n vertex-id scaling; counts must still split
        # near-evenly.
        n = 24
        g = Graph(n, [(v, (v + 1) % n) for v in range(n)])
        parts = distribute_pivots(g, list(range(n)), 4, mode="shared")
        self._assert_exact_cover(parts, list(range(n)))
        sizes = sorted(len(part) for part in parts)
        assert sizes[-1] - sizes[0] <= 2
        self._assert_bounded_imbalance(g, parts, "shared")

    def test_single_giant_degree_pivot(self):
        # A star center dwarfs every leaf; it must be isolated on its
        # own machine, with the leaves spread over the remaining ones.
        n = 41
        g = Graph(n, [(0, v) for v in range(1, n)])
        pivots = list(range(n))
        parts = distribute_pivots(g, pivots, 4, mode="shared")
        self._assert_exact_cover(parts, pivots)
        home = next(part for part in parts if 0 in part)
        assert home == [0], "giant pivot must not drag leaves along"
        self._assert_bounded_imbalance(g, parts, "shared")

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_shapes_cover_and_balance(self, seed):
        import random

        rng = random.Random(seed)
        g = power_law(rng.randint(20, 120), rng.randint(2, 5), seed=seed)
        pivots = sorted(
            rng.sample(range(g.num_vertices),
                       rng.randint(1, g.num_vertices))
        )
        machines = rng.randint(1, 6)
        mode = rng.choice(["memory", "shared"])
        parts = distribute_pivots(g, pivots, machines, mode=mode)
        assert len(parts) == machines
        self._assert_exact_cover(parts, pivots)
        self._assert_bounded_imbalance(g, parts, mode)


class TestStorageModels:
    def test_in_memory_charges_nothing(self, data):
        storage = InMemoryStorage(data)
        g = storage.graph_for_machine(0)
        g.neighbors(0)
        g.has_edge(0, 1)
        assert storage.io_cost == 0.0

    def test_shared_charges_per_first_touch(self, data):
        storage = SharedStorage(data)
        g = storage.graph_for_machine(0)
        g.neighbors(0)
        first = storage.io_cost
        g.neighbors(0)  # cached
        assert storage.io_cost == first
        g.neighbors(1)
        assert storage.io_cost > first
        assert storage.io_requests == 2

    def test_tracked_graph_forwards_metadata(self, data):
        storage = SharedStorage(data)
        g = storage.graph_for_machine(0)
        assert g.num_vertices == data.num_vertices
        assert g.degree(3) == data.degree(3)
        assert g.labels_of(0) == data.labels_of(0)

    def test_memory_footprints(self, data):
        replicated = InMemoryStorage(data)
        shared = SharedStorage(data)
        assert shared.memory_bytes_per_machine(4) < replicated.memory_bytes_per_machine(4)


class TestDistributedRuns:
    def test_embeddings_match_sequential(self, triangle_query, data):
        sequential = set(CECIMatcher(triangle_query, data).match())
        for mode in ("memory", "shared"):
            result = DistributedCECI(
                triangle_query, data, num_machines=4, mode=mode
            ).run()
            assert set(result.embeddings) == sequential
            assert len(result.embeddings) == len(sequential)

    def test_speedup_with_more_machines(self, triangle_query, data):
        t1 = DistributedCECI(triangle_query, data, num_machines=1).run()
        t8 = DistributedCECI(triangle_query, data, num_machines=8).run()
        assert t8.total_time < t1.total_time

    def test_shared_mode_has_io_in_breakdown(self, triangle_query, data):
        result = DistributedCECI(
            triangle_query, data, num_machines=4, mode="shared"
        ).run()
        breakdown = result.construction_breakdown()
        assert breakdown["io"] > 0
        assert breakdown["compute"] > 0

    def test_memory_mode_has_no_io(self, triangle_query, data):
        result = DistributedCECI(
            triangle_query, data, num_machines=4, mode="memory"
        ).run()
        assert result.construction_breakdown()["io"] == 0.0

    def test_work_stealing_happens_on_imbalance(self, triangle_query, data):
        result = DistributedCECI(
            triangle_query, data, num_machines=8, mode="memory"
        ).run()
        assert sum(r.steals for r in result.reports) >= 0  # never negative
        # every machine report accounts its pivots
        all_pivots = sorted(v for r in result.reports for v in r.pivots)
        assert len(all_pivots) == len(set(all_pivots))

    def test_unknown_mode_rejected(self, triangle_query, data):
        with pytest.raises(ValueError):
            DistributedCECI(triangle_query, data, mode="floppy")


class TestDistributedEdgeCases:
    """Degenerate cluster topologies must still yield the exact
    sequential embedding set (satellite of the resilience PR)."""

    @pytest.fixture(scope="class")
    def tiny_data(self):
        # Two disjoint triangles: at most 6 cluster pivots, so any
        # machine count above that leaves machines with no work.
        return Graph(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])

    def test_more_machines_than_pivots(self, triangle_query, tiny_data):
        sequential = set(CECIMatcher(triangle_query, tiny_data).match())
        result = DistributedCECI(
            triangle_query, tiny_data, num_machines=8
        ).run()
        assert result.complete
        assert set(result.embeddings) == sequential
        assert len(result.embeddings) == len(sequential)
        assert any(not r.pivots for r in result.reports)

    def test_zero_pivot_machine_report_is_benign(
        self, triangle_query, tiny_data
    ):
        result = DistributedCECI(
            triangle_query, tiny_data, num_machines=8
        ).run()
        idle = [r for r in result.reports if not r.pivots]
        assert idle  # 8 machines cannot all own a pivot here
        for report in idle:
            assert report.construction_io == 0.0
            assert report.construction_compute == 0.0
            assert report.local_enumeration == 0.0
            assert not report.crashed

    def test_crash_with_more_machines_than_pivots(
        self, triangle_query, tiny_data
    ):
        sequential = set(CECIMatcher(triangle_query, tiny_data).match())
        plan = FaultPlan(seed=5, machine_crashes={0: 0})
        result = DistributedCECI(
            triangle_query, tiny_data, num_machines=8, fault_plan=plan
        ).run()
        assert result.complete
        assert set(result.embeddings) == sequential

    def test_all_clusters_stolen_from_straggler(self, triangle_query, data):
        # Make machine 0 pathologically slow: after its first cluster it
        # never gets scheduled again, so survivors steal its entire
        # remaining queue — the union must still be exact.
        sequential = set(CECIMatcher(triangle_query, data).match())
        plan = FaultPlan(seed=2, slow_machines={0: 1e9})
        result = DistributedCECI(
            triangle_query, data, num_machines=4, fault_plan=plan
        ).run()
        assert result.complete
        assert set(result.embeddings) == sequential
        assert len(result.embeddings) == len(sequential)
        straggler = result.reports[0]
        assert len(straggler.pivots) > 1
        # Everything past the straggler's first pick was stolen.
        stolen = sum(r.steals for r in result.reports)
        assert stolen >= len(straggler.pivots) - 1
