"""Tests for the two-phase index lifecycle (DESIGN.md §8).

The dict builder and the frozen :class:`CompactCECI` must be
observationally identical through the :class:`CECIStore` protocol —
same candidates, same cardinalities, same embeddings — while the
compact store's measured footprint must be at least 2x smaller.
"""

import numpy as np
import pytest

from repro import CECIMatcher, Graph
from repro.core import CompactCECI, Enumerator
from repro.core.ceci import CECI
from repro.core.estimate import cardinality_bound, estimate_embeddings
from repro.core.store import CECIStore, encode_pairs, lookup_pairs
from repro.graph import inject_labels, power_law
from repro.parallel import parallel_match


@pytest.fixture(scope="module")
def instance():
    data = inject_labels(
        power_law(300, 5, seed=7, min_edges_per_vertex=1), 3, seed=7
    )
    query = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
                  labels=[0, 1, 0, 2])
    return query, data


@pytest.fixture(scope="module")
def stores(instance):
    query, data = instance
    dict_matcher = CECIMatcher(query, data, store="dict")
    compact_matcher = CECIMatcher(query, data, store="compact")
    return dict_matcher, dict_matcher.build(), compact_matcher, compact_matcher.build()


class TestProtocol:
    def test_both_representations_satisfy_the_protocol(self, stores):
        _, dict_store, _, compact_store = stores
        assert isinstance(dict_store, CECI)
        assert isinstance(compact_store, CompactCECI)
        assert isinstance(dict_store, CECIStore)
        assert isinstance(compact_store, CECIStore)

    def test_unknown_store_rejected(self, instance):
        query, data = instance
        with pytest.raises(ValueError, match="unknown index store"):
            CECIMatcher(query, data, store="mmap")

    def test_pivots_and_candidates_agree(self, stores):
        _, dict_store, _, compact_store = stores
        assert list(compact_store.pivots) == sorted(dict_store.pivots)
        for u in dict_store.tree.query.vertices():
            assert sorted(int(v) for v in compact_store.candidates(u)) == \
                sorted(dict_store.candidates(u))

    def test_te_and_nte_values_agree(self, stores):
        _, dict_store, _, compact_store = stores
        query = dict_store.tree.query
        for u in query.vertices():
            for v_p, values in dict_store.te[u].items():
                got = compact_store.te_values(u, v_p)
                assert list(got) == list(values)
            for u_n, groups in dict_store.nte[u].items():
                for v_n, values in groups.items():
                    got = compact_store.nte_values(u, u_n, v_n)
                    assert list(got) == list(values)
            # Missing keys answer empty on both.
            assert len(compact_store.te_values(u, -1)) == 0
            assert len(dict_store.te_values(u, -1)) == 0

    def test_cardinalities_agree(self, stores):
        _, dict_store, _, compact_store = stores
        for u in dict_store.tree.query.vertices():
            for v, c in dict_store.cardinality[u].items():
                assert compact_store.cardinality_of(u, v) == c
            assert compact_store.cardinality_of(u, -1) == 0
        assert compact_store.te_edge_count() == dict_store.te_edge_count()
        assert compact_store.nte_edge_count() == dict_store.nte_edge_count()


class TestZeroCopy:
    def test_te_values_are_views_into_the_flat_buffer(self, stores):
        _, _, _, compact_store = stores
        probed = 0
        for u in compact_store.tree.query.vertices():
            keys, _, values = compact_store.te[u]
            for v_p in keys[:5]:
                got = compact_store.te_values(u, int(v_p))
                if len(got) == 0:
                    continue
                assert np.shares_memory(got, values)
                probed += 1
        assert probed > 0

    def test_lookup_pairs_empty_on_missing_key(self):
        triple = encode_pairs({3: [1, 2], 9: [5]})
        assert list(lookup_pairs(triple, 3)) == [1, 2]
        assert list(lookup_pairs(triple, 9)) == [5]
        assert len(lookup_pairs(triple, 4)) == 0
        assert len(lookup_pairs(triple, 99)) == 0


class TestEquivalence:
    def test_embeddings_identical_across_stores(self, stores):
        dict_matcher, _, compact_matcher, _ = stores
        assert sorted(dict_matcher.match()) == sorted(compact_matcher.match())

    def test_estimation_runs_on_both_stores(self, instance):
        query, data = instance
        bounds = []
        for store in ("dict", "compact"):
            matcher = CECIMatcher(query, data, store=store)
            bounds.append(cardinality_bound(matcher))
            result = estimate_embeddings(matcher, samples=50, seed=1)
            assert result.estimate >= 0.0
        assert bounds[0] == bounds[1]

    def test_parallel_match_shares_the_frozen_store(self, instance):
        query, data = instance
        reference = sorted(CECIMatcher(query, data, store="dict").match())
        matcher = CECIMatcher(query, data, store="compact")
        embeddings, _ = parallel_match(matcher, workers=3)
        assert sorted(embeddings) == reference

    def test_array_kernel_engaged_on_compact_store(self, instance):
        query, data = instance
        matcher = CECIMatcher(
            query, data, store="compact", use_intersection=True
        )
        matcher.match()
        assert matcher.stats.kernel_array_calls > 0


class TestFootprint:
    def test_compact_at_least_2x_smaller(self, stores):
        dict_matcher, dict_store, compact_matcher, compact_store = stores
        dict_bytes = dict_store.memory_bytes()
        compact_bytes = compact_store.memory_bytes()
        assert compact_bytes > 0
        assert dict_bytes >= 2 * compact_bytes, (
            f"dict store {dict_bytes}B vs compact {compact_bytes}B: "
            f"ratio {dict_bytes / compact_bytes:.2f}x < 2x"
        )
        # ...and the matchers publish the figures into MatchStats.
        assert dict_matcher.stats.memory_bytes == dict_bytes
        assert compact_matcher.stats.memory_bytes == compact_bytes

    def test_freeze_phase_recorded(self, stores):
        dict_matcher, _, compact_matcher, _ = stores
        assert "freeze" in compact_matcher.stats.phase_seconds
        assert "freeze" not in dict_matcher.stats.phase_seconds


class TestPivotMaintenance:
    def test_remove_candidate_keeps_pivots_sorted(self, stores):
        _, dict_store, _, _ = stores
        ceci = dict_store
        before = list(ceci.pivots)
        assert before == sorted(before)
        assert len(before) >= 2

    def test_cascade_delete_uses_set_discard(self, instance):
        query, data = instance
        ceci = CECIMatcher(query, data, store="dict").build()
        root = ceci.tree.root
        victim = ceci.pivots[0]
        survivors = [p for p in ceci.pivots if p != victim]
        ceci.remove_candidate(root, victim)
        assert victim not in ceci._pivot_set
        assert list(ceci.pivots) == survivors  # still sorted, no victim

    def test_pivot_assignment_resets_mirror(self, instance):
        query, data = instance
        ceci = CECIMatcher(query, data, store="dict").build()
        ceci.pivots = [5, 3, 3, 1]
        assert ceci.pivots == [1, 3, 5]
        assert ceci._pivot_set == {1, 3, 5}
